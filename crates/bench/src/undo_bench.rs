//! Microbenchmark for the checkpoint hot path: typed allocation-free undo
//! journal vs the historical boxed-closure log.
//!
//! Drives identical write-heavy recovery windows through a [`Heap`] in each
//! [`UndoMode`] and reports logged-write throughput, rollback throughput,
//! peak undo bytes, and (when the caller supplies an allocation counter —
//! see `src/bin/bench_undo.rs`) the number of allocator calls made by
//! steady-state logging with a warm arena.
//!
//! The store itself (handle lookup, downcast, the actual memory write) costs
//! the same in every mode and would otherwise dilute the log-vs-log
//! comparison, so the harness first times the identical schedule with
//! logging off (the *floor*) and reports each mode's **logging overhead** —
//! time above the floor — alongside the raw end-to-end rate. The headline
//! speedup compares overheads; both raw and floor numbers are emitted so the
//! arithmetic can be checked.

use std::time::Instant;

use osiris_checkpoint::{Heap, UndoMode};
use osiris_rng::Rng;

use crate::json::Json;

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct UndoBenchConfig {
    /// Recovery windows (mark → writes → rollback) per measured mode.
    pub windows: u64,
    /// Logged writes per window.
    pub writes_per_window: u64,
    /// Windows run before measuring, to warm caches and the arena.
    pub warmup_windows: u64,
    /// Reads the process-wide allocation count, if the caller installed a
    /// counting allocator. Used to prove steady-state logging makes zero
    /// allocator calls once the arena is warm.
    pub alloc_count: Option<fn() -> u64>,
}

impl Default for UndoBenchConfig {
    fn default() -> Self {
        UndoBenchConfig {
            windows: 400,
            writes_per_window: 4_096,
            warmup_windows: 8,
            alloc_count: None,
        }
    }
}

/// Measurements for one undo-log implementation.
#[derive(Clone, Copy, Debug)]
pub struct UndoModeResult {
    /// Logged writes per second (wall-clock, including rollback).
    pub writes_per_sec: f64,
    /// Nanoseconds per logged write spent in the undo log itself: wall-clock
    /// per write minus the no-logging floor for the identical schedule.
    pub log_overhead_ns: f64,
    /// Undo records replayed per second during rollback.
    pub rollback_per_sec: f64,
    /// High-water mark of undo-log bytes across the run.
    pub peak_undo_bytes: usize,
    /// Records actually appended.
    pub undo_appends: u64,
    /// Logged writes elided by coalescing (typed mode only).
    pub coalesced_writes: u64,
    /// Allocator calls during the measured (post-warmup) windows, if an
    /// allocation counter was supplied.
    pub steady_state_allocs: Option<u64>,
}

/// The full comparison.
#[derive(Clone, Copy, Debug)]
pub struct UndoBenchResult {
    /// Configuration echoed back.
    pub windows: u64,
    /// Configuration echoed back.
    pub writes_per_window: u64,
    /// Nanoseconds per write for the identical schedule with logging off —
    /// the cost of the stores themselves, common to every mode.
    pub floor_ns: f64,
    /// The boxed-closure reference implementation ("before").
    pub boxed: UndoModeResult,
    /// The typed journal with coalescing disabled.
    pub typed_no_coalesce: UndoModeResult,
    /// The typed journal as shipped, coalescing enabled ("after").
    pub typed: UndoModeResult,
}

impl UndoBenchResult {
    /// Logging-overhead speedup of the shipped configuration over the boxed
    /// baseline: time spent *in the undo log* per logged write, boxed vs
    /// typed. The floor (the stores themselves, identical in both modes) is
    /// excluded so the log implementations are compared to each other, not
    /// to the workload.
    pub fn speedup(&self) -> f64 {
        self.boxed.log_overhead_ns / self.typed.log_overhead_ns.max(1e-3)
    }

    /// End-to-end wall-clock speedup (stores + logging + rollback), for
    /// reference alongside [`UndoBenchResult::speedup`].
    pub fn raw_speedup(&self) -> f64 {
        self.typed.writes_per_sec / self.boxed.writes_per_sec
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "undo journal: {} windows x {} logged writes (store floor {:.1} ns/write)\n",
            self.windows, self.writes_per_window, self.floor_ns
        ));
        let row = |name: &str, r: &UndoModeResult| {
            let allocs = match r.steady_state_allocs {
                Some(n) => format!("{n}"),
                None => "-".to_string(),
            };
            format!(
                "{:<18} {:>12.0} wr/s {:>7.1} log-ns {:>12.0} rb/s {:>9} peakB {:>9} coalesced {:>8} allocs\n",
                name,
                r.writes_per_sec,
                r.log_overhead_ns,
                r.rollback_per_sec,
                r.peak_undo_bytes,
                r.coalesced_writes,
                allocs
            )
        };
        out.push_str(&row("boxed (before)", &self.boxed));
        out.push_str(&row("typed no-coalesce", &self.typed_no_coalesce));
        out.push_str(&row("typed (after)", &self.typed));
        out.push_str(&format!(
            "logging-overhead speedup (typed vs boxed): {:.2}x  (end-to-end incl. stores: {:.2}x)\n",
            self.speedup(),
            self.raw_speedup()
        ));
        out
    }

    /// Machine-readable form (written to `BENCH_undo.json`).
    pub fn to_json(&self) -> Json {
        let mode = |r: &UndoModeResult| {
            Json::obj([
                ("writes_per_sec", Json::Num(r.writes_per_sec)),
                ("log_overhead_ns_per_write", Json::Num(r.log_overhead_ns)),
                ("rollback_per_sec", Json::Num(r.rollback_per_sec)),
                ("peak_undo_bytes", Json::UInt(r.peak_undo_bytes as u64)),
                ("undo_appends", Json::UInt(r.undo_appends)),
                ("coalesced_writes", Json::UInt(r.coalesced_writes)),
                (
                    "steady_state_allocs",
                    crate::json::alloc_count_json(r.steady_state_allocs),
                ),
            ])
        };
        Json::obj([
            ("windows", Json::UInt(self.windows)),
            ("writes_per_window", Json::UInt(self.writes_per_window)),
            ("store_floor_ns_per_write", Json::Num(self.floor_ns)),
            ("boxed_before", mode(&self.boxed)),
            ("typed_no_coalesce", mode(&self.typed_no_coalesce)),
            ("typed_after", mode(&self.typed)),
            (
                "speedup_log_overhead_typed_vs_boxed",
                Json::Num(self.speedup()),
            ),
            (
                "speedup_end_to_end_typed_vs_boxed",
                Json::Num(self.raw_speedup()),
            ),
        ])
    }
}

/// One precomputed logged write, kept to 16 bytes so replaying the schedule
/// adds as little dispatch cost as possible. The schedule is generated
/// outside the timed loop so the measurement isolates the store+log path
/// rather than the benchmark's own RNG overhead.
#[derive(Clone, Copy)]
enum Op {
    /// Hot counter cell: the dominant store in real servers.
    Cell(u64),
    Scratch(u32, u64),
    VecSet(u32, u32),
    /// 48-byte write at the given offset; the payload is the schedule-wide
    /// `buf_data` pattern (content is irrelevant to undo-log cost).
    Buf(u32),
}

struct Schedule {
    ops: Vec<Op>,
    buf_data: [u8; 48],
}

/// The per-window write mix: skewed toward repeated stores to a few hot
/// locations, the pattern OS servers exhibit inside one request's recovery
/// window (counters, the active inode, the current cache page).
fn gen_schedule(r: &mut Rng, writes: u64, scratch_cells: usize) -> Schedule {
    let ops = (0..writes)
        .map(|_| match r.below(16) {
            0..=7 => Op::Cell(r.next_u64()),
            8..=10 => Op::VecSet(r.below(4) as u32, r.next_u32()),
            11..=13 => Op::Scratch(r.below(scratch_cells as u64) as u32, r.next_u64()),
            _ => Op::Buf((r.below(4) * 64) as u32),
        })
        .collect();
    let mut buf_data = [0u8; 48];
    buf_data.copy_from_slice(&r.bytes(48));
    Schedule { ops, buf_data }
}

#[inline]
fn apply_ops(heap: &mut Heap, w: &World, s: &Schedule) {
    for op in &s.ops {
        match *op {
            Op::Cell(v) => w.hot.set(heap, v),
            Op::Scratch(i, v) => w.scratch[i as usize].set(heap, v),
            Op::VecSet(i, v) => w.vec.set(heap, i as usize, v),
            Op::Buf(off) => w.buf.write_at(heap, off as usize, &s.buf_data),
        }
    }
}

fn run_window(heap: &mut Heap, w: &World, s: &Schedule) {
    heap.set_logging(true);
    let mark = heap.mark();
    apply_ops(heap, w, s);
    heap.rollback_to(mark);
    heap.set_logging(false);
}

struct World {
    hot: osiris_checkpoint::PCell<u64>,
    scratch: Vec<osiris_checkpoint::PCell<u64>>,
    vec: osiris_checkpoint::PVec<u32>,
    buf: osiris_checkpoint::PBuf,
}

fn build_world(heap: &mut Heap) -> World {
    let w = World {
        hot: heap.alloc_cell("hot", 0),
        scratch: (0..8).map(|_| heap.alloc_cell("scratch", 0)).collect(),
        vec: heap.alloc_vec("vec"),
        buf: heap.alloc_buf("buf"),
    };
    for i in 0..8 {
        w.vec.push(heap, i);
    }
    w.buf.write_at(heap, 0, &[0u8; 256]);
    w
}

/// Timing repetitions per measurement; the fastest is kept, which filters
/// scheduler and frequency-scaling noise out of the small per-write numbers.
const REPS: usize = 3;

/// Times the schedule with logging off: the cost of the stores themselves.
fn measure_floor(cfg: &UndoBenchConfig) -> f64 {
    let mut heap = Heap::new("bench-floor");
    let w = build_world(&mut heap);
    let mut r = Rng::new(0xBE4C4);
    let s = gen_schedule(&mut r, cfg.writes_per_window, w.scratch.len());

    for _ in 0..cfg.warmup_windows {
        apply_ops(&mut heap, &w, &s);
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..cfg.windows {
            apply_ops(&mut heap, &w, &s);
        }
        best = best.min(start.elapsed().as_secs_f64().max(1e-9));
    }
    best * 1e9 / (cfg.windows * cfg.writes_per_window) as f64
}

fn measure(
    mode: UndoMode,
    coalescing: bool,
    floor_ns: f64,
    cfg: &UndoBenchConfig,
) -> UndoModeResult {
    let mut heap = Heap::new("bench");
    heap.set_undo_mode(mode);
    heap.set_coalescing(coalescing);
    let w = build_world(&mut heap);
    let mut r = Rng::new(0xBE4C4);
    let s = gen_schedule(&mut r, cfg.writes_per_window, w.scratch.len());

    for _ in 0..cfg.warmup_windows {
        run_window(&mut heap, &w, &s);
    }

    // Allocator accounting covers one post-warmup repetition exactly; the
    // remaining repetitions only refine the timing.
    let allocs_before = cfg.alloc_count.map(|f| f());
    let mut elapsed = f64::INFINITY;
    let mut steady_state_allocs = None;
    for rep in 0..REPS {
        if rep == 1 {
            steady_state_allocs = cfg.alloc_count.map(|f| f() - allocs_before.unwrap_or(0));
        }
        if rep + 1 == REPS {
            heap.reset_stats();
        }
        let start = Instant::now();
        for _ in 0..cfg.windows {
            run_window(&mut heap, &w, &s);
        }
        elapsed = elapsed.min(start.elapsed().as_secs_f64().max(1e-9));
    }

    let stats = heap.stats();
    let total_writes = cfg.windows * cfg.writes_per_window;
    let ns_per_write = elapsed * 1e9 / total_writes as f64;
    UndoModeResult {
        writes_per_sec: total_writes as f64 / elapsed,
        log_overhead_ns: (ns_per_write - floor_ns).max(0.0),
        rollback_per_sec: stats.undo_appends as f64 / elapsed,
        peak_undo_bytes: stats.undo_bytes_peak,
        undo_appends: stats.undo_appends,
        coalesced_writes: stats.coalesced_writes,
        steady_state_allocs,
    }
}

/// Runs the comparison.
pub fn bench_undo(cfg: UndoBenchConfig) -> UndoBenchResult {
    let floor_ns = measure_floor(&cfg);
    UndoBenchResult {
        windows: cfg.windows,
        writes_per_window: cfg.writes_per_window,
        floor_ns,
        boxed: measure(UndoMode::BoxedReference, false, floor_ns, &cfg),
        typed_no_coalesce: measure(UndoMode::Typed, false, floor_ns, &cfg),
        typed: measure(UndoMode::Typed, true, floor_ns, &cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_sane_numbers() {
        let cfg = UndoBenchConfig {
            windows: 4,
            writes_per_window: 512,
            warmup_windows: 2,
            alloc_count: None,
        };
        let r = bench_undo(cfg);
        assert!(r.boxed.writes_per_sec > 0.0);
        assert!(r.typed.writes_per_sec > 0.0);
        assert_eq!(r.boxed.coalesced_writes, 0, "reference never coalesces");
        assert!(r.typed.coalesced_writes > 0, "hot workload must coalesce");
        assert!(r.typed.peak_undo_bytes < r.boxed.peak_undo_bytes);
        let j = r.to_json().pretty();
        assert!(j.contains("speedup_log_overhead_typed_vs_boxed"));
        assert!(j.contains("store_floor_ns_per_write"));
    }
}
