//! Snapshot-fork campaign benchmark: forged injections vs from-boot
//! reruns.
//!
//! The forge runs a late-window fault campaign (every variant forks at
//! its site's last-occurrence step) over a workload with a configurable
//! bulk prefix ([`ScriptWorkload::stress_rounds`]). A classic from-boot
//! campaign pays boot + the whole clean prefix for every injection; the
//! forge pays one O(dirty) snapshot adoption. The bench measures both on
//! the **same variant plan** (the baseline on a deterministic stride
//! subsample — replaying every variant from boot is exactly the cost this
//! design removes), verifies the sampled records are byte-identical (fork
//! equivalence), and proves the fork hot path's allocation discipline:
//! adopting a snapshot makes a small constant number of allocator calls
//! for control-plane state, *independent of the prefix length* — clean
//! heap chunks are restored without allocating.
//!
//! `bench_campaign --check` enforces:
//! * forged injections/CPU-second ≥ [`SPEEDUP_FLOOR`]× the from-boot rate;
//! * sampled forge records == baseline records (same bytes, same order);
//! * allocator calls per snapshot adoption ≤ [`READOPT_ALLOC_BOUND`] and
//!   equal between a small-prefix and a large-prefix snapshot;
//! * 100% coverage of the planned FailStop matrix and ≥
//!   [`RECOVERY_COVERAGE_FLOOR`]% of the DoubleFault × DuringRecovery
//!   space within the default budget.

use std::time::Instant;

use osiris_checkpoint::ChunkStore;
use osiris_core::PolicyKind;
use osiris_faults::forge::{forge_config, Boundary, ScriptWorkload};
use osiris_faults::{Forge, ForgeConfig, ForgeResult};
use osiris_servers::Os;

use crate::json::{Json, JsonObj};

/// Minimum forged-vs-from-boot throughput ratio the gate enforces.
pub const SPEEDUP_FLOOR: f64 = 10.0;

/// Maximum allocator calls one snapshot adoption may make (control-plane
/// structures only; the heap restore itself must not allocate for clean
/// chunks).
pub const READOPT_ALLOC_BOUND: u64 = 256;

/// Minimum DoubleFault × DuringRecovery coverage (percent) within the
/// default budget.
pub const RECOVERY_COVERAGE_FLOOR: f64 = 90.0;

/// Benchmark configuration.
#[derive(Clone, Copy, Debug)]
pub struct CampaignBenchConfig {
    /// Bulk rounds per prefix step — the clean work a from-boot rerun
    /// replays and a fork skips.
    pub stress_rounds: u32,
    /// Worker threads (both sides use the same pool size, so wall-clock
    /// rate ratios equal CPU-second ratios).
    pub threads: usize,
    /// Forge injection budget.
    pub budget: usize,
    /// The baseline replays every `baseline_stride`-th planned variant
    /// from boot (plan order is policy-major, so a stride covers every
    /// policy and model).
    pub baseline_stride: usize,
    /// Timed repetitions of the forged sweep; the reported time is the
    /// minimum (standard min-of-reps discipline — scheduler noise only
    /// ever slows a run down).
    pub forge_reps: usize,
    /// Reads the process-wide allocation count, if the binary installed a
    /// counting allocator.
    pub alloc_count: Option<fn() -> u64>,
}

impl Default for CampaignBenchConfig {
    fn default() -> Self {
        CampaignBenchConfig {
            stress_rounds: 1200,
            threads: 4,
            budget: 512,
            baseline_stride: 8,
            forge_reps: 2,
            alloc_count: None,
        }
    }
}

impl CampaignBenchConfig {
    /// Scaled-down baseline sample for the CI gate; the forge side and the
    /// prefix length are unchanged (the speedup claim needs the real
    /// prefix), only the number of expensive from-boot reruns shrinks.
    pub fn quick() -> Self {
        CampaignBenchConfig {
            baseline_stride: 16,
            ..CampaignBenchConfig::default()
        }
    }

    fn forge(&self) -> Forge {
        Forge::new(ForgeConfig {
            script: ScriptWorkload {
                stress_rounds: self.stress_rounds,
                ..ScriptWorkload::default()
            },
            inject_at: Boundary::Late,
            threads: self.threads,
            budget: self.budget,
            ..ForgeConfig::default()
        })
    }
}

/// Allocation counts for one snapshot adoption at two prefix scales.
#[derive(Clone, Copy, Debug)]
pub struct ReadoptAllocs {
    /// Allocator calls adopting a small-prefix (quickstart) snapshot.
    pub small_prefix: u64,
    /// Allocator calls adopting a large-prefix (bulk) snapshot.
    pub large_prefix: u64,
}

/// Benchmark results.
#[derive(Debug)]
pub struct CampaignBenchResult {
    /// The executed forge sweep (campaign + coverage report).
    pub forge: ForgeResult,
    /// Planned base-wave variants.
    pub planned: usize,
    /// Wall-clock seconds for the full forged sweep (snapshots included).
    pub forge_secs: f64,
    /// Forged injections per second.
    pub forge_rate: f64,
    /// From-boot reruns measured.
    pub baseline_runs: usize,
    /// Wall-clock seconds for the baseline sample.
    pub baseline_secs: f64,
    /// From-boot injections per second.
    pub baseline_rate: f64,
    /// Sampled records that differ between forge and baseline (fork
    /// equivalence requires 0).
    pub record_mismatches: usize,
    /// Allocator calls per adoption, when a counter is installed.
    pub readopt_allocs: Option<ReadoptAllocs>,
}

impl CampaignBenchResult {
    /// Forged-vs-from-boot throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.forge_rate / self.baseline_rate
    }

    /// Renders the human-readable summary.
    pub fn render(&self) -> String {
        let r = &self.forge.report;
        let mut out = String::new();
        out.push_str("== snapshot-fork campaign bench ==\n");
        out.push_str(&format!(
            "forge:    {:>5} injections in {:>8.3} s  ({:>7.0} inj/s)\n",
            r.injections, self.forge_secs, self.forge_rate
        ));
        out.push_str(&format!(
            "baseline: {:>5} reruns     in {:>8.3} s  ({:>7.0} inj/s, stride sample)\n",
            self.baseline_runs, self.baseline_secs, self.baseline_rate
        ));
        out.push_str(&format!(
            "speedup:  {:.1}x forged vs from-boot (floor {SPEEDUP_FLOOR}x)\n",
            self.speedup()
        ));
        out.push_str(&format!(
            "records:  {}/{} sampled records identical\n",
            self.baseline_runs - self.record_mismatches,
            self.baseline_runs
        ));
        out.push_str(&format!(
            "forks:    {} fresh, {} re-adopted, {} dirty bytes, {} snapshots ({} manifest bytes)\n",
            r.stats.forks,
            r.stats.readopts,
            r.stats.fork_dirty_bytes,
            r.stats.snapshots,
            r.stats.snapshot_manifest_bytes
        ));
        out.push_str(&format!(
            "coverage: fail-stop {:.0}% ({}/{}), recovery space {:.0}% ({}/{}), {} outcome cells\n",
            r.fail_stop_pct(),
            r.fail_stop.1,
            r.fail_stop.0,
            r.recovery_space_pct(),
            r.recovery_space.1,
            r.recovery_space.0,
            r.outcome_cells
        ));
        out.push_str(&format!(
            "frontier: {} flips across {} sites, {} refinement runs\n",
            r.frontier.flips,
            r.frontier.sites.len(),
            r.refinements
        ));
        if let Some(a) = self.readopt_allocs {
            out.push_str(&format!(
                "adoption: {} allocator calls (small prefix) vs {} (large prefix), bound {}\n",
                a.small_prefix, a.large_prefix, READOPT_ALLOC_BOUND
            ));
        }
        out
    }

    /// The `BENCH_campaign.json` document.
    pub fn to_json(&self) -> Json {
        let mut obj = JsonObj::new()
            .field("planned", Json::UInt(self.planned as u64))
            .field("forge_secs", Json::Num(self.forge_secs))
            .field("forge_rate", Json::Num(self.forge_rate))
            .field("baseline_runs", Json::UInt(self.baseline_runs as u64))
            .field("baseline_secs", Json::Num(self.baseline_secs))
            .field("baseline_rate", Json::Num(self.baseline_rate))
            .field("speedup", Json::Num(self.speedup()))
            .field("speedup_floor", Json::Num(SPEEDUP_FLOOR))
            .field(
                "record_mismatches",
                Json::UInt(self.record_mismatches as u64),
            );
        if let Some(a) = self.readopt_allocs {
            obj = obj
                .field("readopt_allocs_small_prefix", Json::UInt(a.small_prefix))
                .field("readopt_allocs_large_prefix", Json::UInt(a.large_prefix))
                .field("readopt_alloc_bound", Json::UInt(READOPT_ALLOC_BOUND));
        }
        obj.field("forge", self.forge.report.to_json())
            .field("campaign", self.forge.campaign.report_json())
            .build()
    }
}

/// Measures allocator calls for one warmed snapshot adoption at the given
/// prefix scale.
fn readopt_allocs(stress_rounds: u32, alloc_count: fn() -> u64) -> u64 {
    let script = ScriptWorkload {
        stress_rounds,
        ..ScriptWorkload::default()
    };
    let mut store = ChunkStore::new();
    let mut parent = Os::new(forge_config(PolicyKind::Enhanced));
    let run = script.run_range(&mut parent, 0..ScriptWorkload::BULK_STEPS);
    assert!(run.clean(), "clean prefix: {:?}", run.outcome);
    let snap = parent.snapshot_into(&mut store, None);
    let (mut os, _) = Os::fork_from(&snap, &store);
    for _ in 0..3 {
        os.try_readopt(&snap, &store).expect("warmup readopt");
    }
    let before = alloc_count();
    os.try_readopt(&snap, &store).expect("measured readopt");
    alloc_count() - before
}

/// Runs the benchmark.
pub fn bench_campaign(cfg: CampaignBenchConfig) -> CampaignBenchResult {
    let forge = cfg.forge();
    let plan = forge.plan();
    let planned = plan.variants.len();

    let mut result = None;
    let mut forge_secs = f64::INFINITY;
    for _ in 0..cfg.forge_reps.max(1) {
        let t = Instant::now();
        let res = forge.run_plan(&plan);
        forge_secs = forge_secs.min(t.elapsed().as_secs_f64());
        if let Some(prev) = &result {
            let prev: &ForgeResult = prev;
            assert_eq!(
                prev.campaign.axiom_bytes(),
                res.campaign.axiom_bytes(),
                "repeated forged sweeps must be identical"
            );
        }
        result = Some(res);
    }
    let result = result.expect("at least one rep");
    let forge_rate = result.report.injections as f64 / forge_secs;

    // From-boot baseline on a deterministic stride subsample of the same
    // plan; compare against the forge's records for those plan indices.
    let stride = cfg.baseline_stride.max(1);
    let (indices, sample): (Vec<usize>, Vec<_>) = plan
        .variants
        .iter()
        .enumerate()
        .step_by(stride)
        .map(|(i, v)| (i, v.clone()))
        .unzip();
    let t = Instant::now();
    let baseline = forge.run_baseline(&sample);
    let baseline_secs = t.elapsed().as_secs_f64();
    let baseline_rate = baseline.len() as f64 / baseline_secs;

    let forged_records = result.campaign.records();
    let record_mismatches = indices
        .iter()
        .zip(baseline.iter())
        .filter(|(&i, b)| format!("{:?}", forged_records[i]) != format!("{b:?}"))
        .count();

    let readopt_allocs = cfg.alloc_count.map(|count| ReadoptAllocs {
        small_prefix: readopt_allocs(0, count),
        large_prefix: readopt_allocs(cfg.stress_rounds, count),
    });

    CampaignBenchResult {
        forge: result,
        planned,
        forge_secs,
        forge_rate,
        baseline_runs: baseline.len(),
        baseline_secs,
        baseline_rate,
        record_mismatches,
        readopt_allocs,
    }
}
