//! Source-line counting for the Reliable Computing Base report (§V-A).
//!
//! The paper measures the RCB with SLOCCount: the mechanisms that must be
//! trusted — checkpointing, restartability, recovery-window management,
//! initialization, and the message-passing substrate — against the whole
//! code base. Here the RCB is exactly the substrate crates
//! (`osiris-checkpoint`, `osiris-core`, `osiris-cothread`, `osiris-kernel`),
//! while the OS servers, baseline, workloads and experiment code are
//! untrusted.

use std::path::{Path, PathBuf};

/// Line counts for one crate.
#[derive(Clone, Debug)]
pub struct CrateLoc {
    /// Crate directory name.
    pub name: String,
    /// Source lines of code (non-blank, non-comment-only).
    pub loc: usize,
    /// Whether the crate is part of the Reliable Computing Base.
    pub rcb: bool,
}

/// The full RCB report.
#[derive(Clone, Debug)]
pub struct RcbReport {
    /// Per-crate counts.
    pub crates: Vec<CrateLoc>,
}

impl RcbReport {
    /// Total lines in the workspace.
    pub fn total(&self) -> usize {
        self.crates.iter().map(|c| c.loc).sum()
    }

    /// Lines inside the RCB.
    pub fn rcb_total(&self) -> usize {
        self.crates.iter().filter(|c| c.rcb).map(|c| c.loc).sum()
    }

    /// RCB share of the code base, in percent.
    pub fn rcb_pct(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.rcb_total() as f64 / self.total() as f64
        }
    }
}

/// Crates whose code must be trusted to be free of faults.
pub const RCB_CRATES: [&str; 4] = ["checkpoint", "core", "cothread", "kernel"];

fn count_file(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

fn count_dir(dir: &Path) -> usize {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            total += count_dir(&p);
        } else if p.extension().is_some_and(|e| e == "rs") {
            total += count_file(&p);
        }
    }
    total
}

/// Locates the workspace root from this crate's manifest dir.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Counts source lines for every workspace crate (plus the facade,
/// examples and integration tests, attributed as non-RCB).
pub fn count_workspace_loc() -> RcbReport {
    let root = workspace_root();
    let mut crates = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("?")
                .to_string();
            let loc = count_dir(&dir);
            let rcb = RCB_CRATES.contains(&name.as_str());
            crates.push(CrateLoc { name, loc, rcb });
        }
    }
    for (name, sub) in [
        ("facade", "src"),
        ("examples", "examples"),
        ("tests", "tests"),
    ] {
        let loc = count_dir(&root.join(sub));
        if loc > 0 {
            crates.push(CrateLoc {
                name: name.to_string(),
                loc,
                rcb: false,
            });
        }
    }
    RcbReport { crates }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_counting_finds_substantial_code() {
        let report = count_workspace_loc();
        assert!(report.total() > 5_000, "total {}", report.total());
        assert!(report.rcb_total() > 500, "rcb {}", report.rcb_total());
        let pct = report.rcb_pct();
        assert!(pct > 1.0 && pct < 60.0, "rcb {}%", pct);
    }

    #[test]
    fn rcb_crates_are_present() {
        let report = count_workspace_loc();
        for name in RCB_CRATES {
            assert!(
                report.crates.iter().any(|c| c.name == name && c.rcb),
                "missing RCB crate {}",
                name
            );
        }
    }
}
