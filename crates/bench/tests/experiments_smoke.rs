//! Regression tests for the experiment generators: every table function
//! must keep producing the paper's *shapes*. These are the guards that a
//! refactor of the servers or the cost model does not silently destroy the
//! reproduction.

use osiris_bench::{figure3, geomean, table1, table4, table5, table6};

#[test]
fn table1_shapes_hold() {
    let t = table1();
    assert_eq!(t.rows.len(), 5);
    for r in &t.rows {
        assert!((0.0..=100.0).contains(&r.pessimistic), "{:?}", r);
        assert!((0.0..=100.0).contains(&r.enhanced), "{:?}", r);
        assert!(
            r.enhanced + 1e-9 >= r.pessimistic,
            "enhanced must never have less coverage: {:?}",
            r
        );
    }
    let ds = t.rows.iter().find(|r| r.server == "ds").expect("ds row");
    assert!(
        ds.enhanced - ds.pessimistic > 30.0,
        "DS must show the signature pessimistic/enhanced gap: {:?}",
        ds
    );
    let vfs = t.rows.iter().find(|r| r.server == "vfs").expect("vfs row");
    assert!(
        (vfs.enhanced - vfs.pessimistic).abs() < 1.0,
        "VFS must be policy-invariant: {:?}",
        vfs
    );
    assert!(t.weighted_enhanced > t.weighted_pessimistic);
    assert!(t.weighted_enhanced > 40.0 && t.weighted_enhanced < 95.0);
}

#[test]
fn table4_shapes_hold() {
    let rows = table4(0.5);
    assert_eq!(rows.len(), 12);
    let slow: Vec<f64> = rows.iter().map(|r| r.slowdown).collect();
    let gm = geomean(&slow);
    assert!(gm > 1.5 && gm < 10.0, "geomean slowdown out of range: {gm}");
    // Compute-bound benchmarks are architecture-insensitive.
    for name in ["dhry2reg", "whetstone-double"] {
        let r = rows.iter().find(|r| r.bench == name).expect("row");
        assert!((r.slowdown - 1.0).abs() < 0.05, "{name}: {}", r.slowdown);
    }
    // IPC-bound benchmarks pay the microkernel tax.
    for name in ["pipe", "syscall", "spawn", "context1"] {
        let r = rows.iter().find(|r| r.bench == name).expect("row");
        assert!(
            r.slowdown > 2.0,
            "{name} must pay the IPC tax: {}",
            r.slowdown
        );
    }
}

#[test]
fn table5_shapes_hold() {
    let rows = table5(0.5);
    let gm =
        |f: fn(&osiris_bench::Table5Row) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    let noopt = gm(|r| r.without_opt);
    let pess = gm(|r| r.pessimistic);
    let enh = gm(|r| r.enhanced);
    // The paper's headline: window gating turns a noticeable overhead into
    // ~5%, and the gated policies cost about the same.
    assert!(
        noopt > pess && noopt > enh,
        "gating must pay off: {noopt} vs {pess}/{enh}"
    );
    assert!(
        pess < 1.12 && enh < 1.12,
        "gated overhead stays single-digit"
    );
    assert!(noopt > 1.05, "unoptimized instrumentation must be visible");
    assert!(
        (pess - enh).abs() < 0.02,
        "gated policies are near-identical"
    );
}

#[test]
fn table6_vm_dominates() {
    let rows = table6();
    let vm = rows.iter().find(|r| r.server == "vm").expect("vm row");
    let others: f64 = rows
        .iter()
        .filter(|r| r.server != "vm")
        .map(|r| r.overhead_kb())
        .sum();
    assert!(
        vm.overhead_kb() > others * 5.0,
        "VM must dominate the memory overhead (paper Table VI): vm={} others={}",
        vm.overhead_kb(),
        others
    );
    assert!(
        vm.clone_kb >= vm.base_kb * 0.9,
        "the spare clone mirrors the resident state"
    );
}

#[test]
fn figure3_pm_dependence_shapes_hold() {
    // Two intervals suffice to check monotonicity and PM-independence.
    let intervals = [50_000u64, 6_400_000];
    let points = figure3(&intervals, 0.5);
    let score = |bench: &str, interval: u64| {
        points
            .iter()
            .find(|p| p.bench == bench && p.interval == interval)
            .expect("point")
            .score
    };
    // PM-independent: flat.
    for bench in ["dhry2reg", "fsbuffer", "pipe"] {
        let lo = score(bench, intervals[0]);
        let hi = score(bench, intervals[1]);
        assert!(
            (lo - hi).abs() / hi < 0.02,
            "{bench} must be flat: {lo} vs {hi}"
        );
    }
    // PM-dependent: worse under higher fault rates.
    for bench in ["spawn", "shell1", "syscall"] {
        let lo = score(bench, intervals[0]);
        let hi = score(bench, intervals[1]);
        assert!(lo < hi, "{bench} must degrade under faults: {lo} vs {hi}");
    }
    // And every point completed without functional degradation.
    assert!(
        points.iter().all(|p| p.ok),
        "every fig3 run must complete cleanly"
    );
}
