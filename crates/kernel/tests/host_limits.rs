//! Host-level behaviours: run limits, hang detection, kill events and
//! teardown — using the monolith-free mini engine from `kernel_direct` is
//! unnecessary here; a trivial engine suffices.

use osiris_kernel::abi::{Pid, SysReply, Syscall};
use osiris_kernel::{
    Host, HostConfig, OsEngine, ProgramRegistry, RunOutcome, ShutdownKind, SyscallId,
};

/// An engine that answers `getpid` and swallows everything else (so any
/// other call blocks forever) — a deliberately broken OS for limit tests.
#[derive(Default)]
struct BlackHole {
    replies: Vec<(SyscallId, Pid, SysReply)>,
    now: u64,
}

impl OsEngine for BlackHole {
    fn submit(&mut self, sid: SyscallId, pid: Pid, call: Syscall) {
        self.now += 100;
        match call {
            Syscall::GetPid => self.replies.push((sid, pid, SysReply::Proc(pid))),
            Syscall::Exit { .. } => {}
            _ => {} // swallowed: the caller blocks forever
        }
    }
    fn pump(&mut self) -> Vec<(SyscallId, Pid, SysReply)> {
        std::mem::take(&mut self.replies)
    }
    fn take_kill_events(&mut self) -> Vec<Pid> {
        Vec::new()
    }
    fn fire_next_timer(&mut self) -> bool {
        false
    }
    fn shutdown_state(&self) -> Option<ShutdownKind> {
        None
    }
    fn now(&self) -> u64 {
        self.now
    }
    fn charge_user(&mut self, units: u64) {
        self.now += units;
    }
}

/// An engine that answers every sleep with `ECRASH` — a server stuck in a
/// permanent crash loop (or quarantined) from the caller's point of view.
#[derive(Default)]
struct AlwaysCrashed {
    replies: Vec<(SyscallId, Pid, SysReply)>,
    sleep_submissions: u32,
    now: u64,
}

impl OsEngine for AlwaysCrashed {
    fn submit(&mut self, sid: SyscallId, pid: Pid, call: Syscall) {
        self.now += 100;
        match call {
            Syscall::GetPid => self.replies.push((sid, pid, SysReply::Proc(pid))),
            Syscall::Sleep { .. } => {
                self.sleep_submissions += 1;
                self.replies
                    .push((sid, pid, SysReply::Err(osiris_kernel::abi::Errno::ECRASH)));
            }
            _ => {}
        }
    }
    fn pump(&mut self) -> Vec<(SyscallId, Pid, SysReply)> {
        std::mem::take(&mut self.replies)
    }
    fn take_kill_events(&mut self) -> Vec<Pid> {
        Vec::new()
    }
    fn fire_next_timer(&mut self) -> bool {
        false
    }
    fn shutdown_state(&self) -> Option<ShutdownKind> {
        None
    }
    fn now(&self) -> u64 {
        self.now
    }
    fn charge_user(&mut self, units: u64) {
        self.now += units;
    }
}

#[test]
fn transparent_ecrash_retry_is_bounded_by_the_budget() {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        sys.set_retry_ecrash(true);
        // A server that never stops crashing must surface ECRASH to the
        // program after the per-call budget, not livelock the run.
        match sys.sleep(5) {
            Err(osiris_kernel::abi::Errno::ECRASH) => 0,
            other => panic!("expected budgeted ECRASH, got {other:?}"),
        }
    });
    let host_cfg = HostConfig {
        ecrash_retry_budget: 6,
        ecrash_backoff_base: 10,
        ecrash_backoff_max: 40,
        ..Default::default()
    };
    let mut host = Host::new(AlwaysCrashed::default(), registry).with_config(host_cfg);
    let outcome = host.run("main", &[]);
    let engine = host.into_engine();
    assert!(
        matches!(outcome, RunOutcome::Completed { init_code: 0, .. }),
        "{outcome:?}"
    );
    assert_eq!(
        engine.sleep_submissions, 6,
        "exactly budget-many attempts reach the engine"
    );
    // Retries 2..=5 back off for 10, 20, 40 (cap), 40 compute units, on top
    // of 100 cycles charged per submission: the retry loop advances virtual
    // time instead of spinning.
    assert!(engine.now >= 6 * 100 + 110, "t={}", engine.now);
}

#[test]
fn ecrash_surfaces_immediately_without_opt_in() {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| match sys.sleep(5) {
        Err(osiris_kernel::abi::Errno::ECRASH) => 0,
        other => panic!("expected raw ECRASH, got {other:?}"),
    });
    let mut host = Host::new(AlwaysCrashed::default(), registry);
    let outcome = host.run("main", &[]);
    let engine = host.into_engine();
    assert!(matches!(
        outcome,
        RunOutcome::Completed { init_code: 0, .. }
    ));
    assert_eq!(engine.sleep_submissions, 1, "no transparent retry");
}

#[test]
fn swallowed_syscall_is_detected_as_hang() {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        let _ = sys.getpid();
        let _ = sys.sleep(10); // swallowed: never answered
        0
    });
    let mut host = Host::new(BlackHole::default(), registry);
    match host.run("main", &[]) {
        RunOutcome::Hang(reason) => assert!(reason.contains("blocked"), "{reason}"),
        other => panic!("expected hang, got {other:?}"),
    }
}

#[test]
fn virtual_time_limit_aborts_runaway_runs() {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| loop {
        sys.compute(1_000_000);
        if sys.getpid().is_err() {
            return 1;
        }
    });
    let host_cfg = HostConfig {
        max_virtual_time: 5_000_000,
        ..Default::default()
    };
    let mut host = Host::new(BlackHole::default(), registry).with_config(host_cfg);
    match host.run("main", &[]) {
        RunOutcome::Hang(reason) => assert!(reason.contains("time limit"), "{reason}"),
        other => panic!("expected time-limit abort, got {other:?}"),
    }
}

#[test]
fn clean_exit_reports_codes() {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        assert_eq!(sys.getpid().unwrap(), Pid(1));
        42
    });
    let mut host = Host::new(BlackHole::default(), registry);
    match host.run("main", &[]) {
        RunOutcome::Completed {
            init_code,
            exit_codes,
        } => {
            assert_eq!(init_code, 42);
            assert_eq!(exit_codes.get(&1), Some(&42));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn program_panic_becomes_exit_code_101() {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        let _ = sys.getpid();
        panic!("program bug");
    });
    let mut host = Host::new(BlackHole::default(), registry);
    match host.run("main", &[]) {
        RunOutcome::Completed { init_code, .. } => assert_eq!(init_code, 101),
        other => panic!("{other:?}"),
    }
}

#[test]
fn sys_exit_terminates_immediately() {
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", |sys| {
        sys.exit(7);
    });
    let mut host = Host::new(BlackHole::default(), registry);
    match host.run("main", &[]) {
        RunOutcome::Completed { init_code, .. } => assert_eq!(init_code, 7),
        other => panic!("{other:?}"),
    }
}
