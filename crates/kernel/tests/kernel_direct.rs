//! Direct kernel tests with a minimal two-component protocol — no OS
//! servers involved. These exercise the Reliable Computing Base itself:
//! message routing, recovery-window lifecycle, crash decisions under each
//! policy, timers, hang handling, instrumentation modes and privileged
//! operations.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use osiris_checkpoint::{Heap, PCell};
use osiris_core::{PolicyKind, SeepClass, SeepMeta};
use osiris_kernel::abi::{Pid, SysReply};
use osiris_kernel::{
    Ctx, Endpoint, FaultEffect, FaultHook, Instrumentation, Kernel, KernelConfig, Message, Probe,
    Protocol, Server, ShutdownKind, SyscallId,
};

/// A tiny protocol: an echo service plus a "mutator" that asks a peer to
/// bump a counter.
#[derive(Clone, Debug)]
enum Msg {
    /// User request: echo back `v` (read-only handler).
    Echo(u64),
    /// User request: increment the peer's counter via `BumpPeer`.
    BumpViaPeer,
    /// User request: query the peer read-only (non-state-modifying send),
    /// then mutate local state and reply.
    PeekPeer,
    /// User request: arm a self-timer.
    ArmTick,
    /// Server-to-server state-modifying request.
    Bump,
    /// Server-to-server read-only query.
    Peek,
    /// Reply carrying a value (read by repliers' peers in richer tests).
    #[allow(dead_code)]
    RVal(u64),
    /// Crash reply (error virtualization).
    RCrash,
    /// Crash notification to the privileged component.
    Notify(u8),
    /// Timer payload.
    Tick,
    /// Reply to the user.
    UserReply(SysReply),
}

impl Protocol for Msg {
    fn seep(&self) -> SeepMeta {
        match self {
            Msg::Echo(_) | Msg::BumpViaPeer | Msg::PeekPeer | Msg::ArmTick => {
                SeepMeta::request(SeepClass::StateModifying)
            }
            Msg::Bump => SeepMeta::request(SeepClass::StateModifying),
            Msg::Peek => SeepMeta::request(SeepClass::NonStateModifying),
            Msg::RVal(_) | Msg::RCrash | Msg::UserReply(_) => {
                SeepMeta::reply(SeepClass::StateModifying)
            }
            Msg::Notify(_) | Msg::Tick => SeepMeta::notification(SeepClass::NonStateModifying),
        }
    }
    fn crash_reply() -> Self {
        Msg::RCrash
    }
    fn crash_notify(target: u8) -> Self {
        Msg::Notify(target)
    }
    fn as_user_reply(&self) -> Option<SysReply> {
        match self {
            Msg::UserReply(r) => Some(r.clone()),
            _ => None,
        }
    }
    fn label(&self) -> &'static str {
        "msg"
    }
}

/// The privileged "RS" stand-in: recovers whatever the kernel reports.
#[derive(Clone)]
struct MiniRs {
    recoveries: Arc<AtomicU32>,
}

impl Server<Msg> for MiniRs {
    fn name(&self) -> &'static str {
        "mini-rs"
    }
    fn init(&mut self, _ctx: &mut Ctx<'_, Msg>) {}
    fn handle(&mut self, msg: &Message<Msg>, ctx: &mut Ctx<'_, Msg>) {
        if let Msg::Notify(target) = msg.payload {
            self.recoveries.fetch_add(1, Ordering::Relaxed);
            ctx.recover(target);
        }
    }
    fn clone_box(&self) -> Box<dyn Server<Msg>> {
        Box::new(self.clone())
    }
}

/// A worker holding one counter. `Echo` is pure; `Bump` mutates;
/// `BumpViaPeer` sends a state-modifying request to the peer (closing its
/// own window) before replying.
#[derive(Clone)]
struct Worker {
    peer: Option<Endpoint>,
    counter: Option<PCell<u64>>,
}

impl Worker {
    fn new(peer: Option<Endpoint>) -> Self {
        Worker {
            peer,
            counter: None,
        }
    }
}

impl Server<Msg> for Worker {
    fn name(&self) -> &'static str {
        "worker"
    }
    fn init(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.counter = Some(ctx.heap().alloc_cell("counter", 0));
    }
    fn handle(&mut self, msg: &Message<Msg>, ctx: &mut Ctx<'_, Msg>) {
        let counter = self.counter.expect("init ran");
        match &msg.payload {
            Msg::Echo(v) => {
                ctx.site("worker.echo");
                ctx.reply(msg.return_path(), Msg::UserReply(SysReply::Val(*v as i64)));
            }
            Msg::Bump => {
                ctx.site("worker.bump.pre");
                counter.update(ctx.heap(), |c| *c += 1);
                ctx.site("worker.bump.post");
                let v = counter.get(ctx.heap_ref());
                let reply = if matches!(msg.src, Endpoint::Process(_)) {
                    Msg::UserReply(SysReply::Val(v as i64))
                } else {
                    Msg::RVal(v)
                };
                ctx.reply(msg.return_path(), reply);
            }
            Msg::Peek => {
                ctx.site("worker.peek");
                let v = counter.get(ctx.heap_ref());
                let reply = if matches!(msg.src, Endpoint::Process(_)) {
                    Msg::UserReply(SysReply::Val(v as i64))
                } else {
                    Msg::RVal(v)
                };
                ctx.reply(msg.return_path(), reply);
            }
            Msg::BumpViaPeer => {
                ctx.site("worker.relay.pre");
                counter.update(ctx.heap(), |c| *c += 100);
                let peer = self.peer.expect("relay worker has a peer");
                ctx.send_request(peer, Msg::Bump);
                ctx.site("worker.relay.post");
                // Reply immediately (fire-and-forget relay semantics keep
                // the test single-step).
                ctx.reply(msg.return_path(), Msg::UserReply(SysReply::Ok));
                // Deferred bookkeeping after the reply: with window-gated
                // instrumentation this write is NOT logged.
                counter.update(ctx.heap(), |c| *c += 1);
            }
            Msg::PeekPeer => {
                ctx.site("worker.peekpeer.pre");
                counter.update(ctx.heap(), |c| *c += 7);
                let peer = self.peer.expect("peeking worker has a peer");
                ctx.send_request(peer, Msg::Peek);
                ctx.site("worker.peekpeer.post");
                ctx.reply(msg.return_path(), Msg::UserReply(SysReply::Ok));
            }
            Msg::ArmTick => {
                ctx.site("worker.arm");
                ctx.set_timer(50, Msg::Tick);
                ctx.reply(msg.return_path(), Msg::UserReply(SysReply::Ok));
            }
            Msg::Tick => {
                ctx.site("worker.tick");
                counter.update(ctx.heap(), |c| *c += 1000);
            }
            _ => {}
        }
    }
    fn audit_facts(&self, heap: &Heap) -> Vec<(String, u64)> {
        vec![("counter".to_string(), self.counter.expect("init").get(heap))]
    }
    fn clone_box(&self) -> Box<dyn Server<Msg>> {
        Box::new(self.clone())
    }
}

/// Hook crashing at one site, once or always.
struct CrashAt {
    site: &'static str,
    always: bool,
    fired: bool,
}

impl FaultHook for CrashAt {
    fn on_site(&mut self, probe: &Probe) -> FaultEffect {
        if probe.site == self.site && (self.always || !self.fired) {
            self.fired = true;
            FaultEffect::Panic
        } else {
            FaultEffect::None
        }
    }
}

fn build(policy: PolicyKind, instr: Instrumentation) -> (Kernel<Msg>, Arc<AtomicU32>) {
    let recoveries = Arc::new(AtomicU32::new(0));
    let mut kernel = Kernel::new(KernelConfig {
        policy: policy.instantiate(),
        instrumentation: instr,
        ..Default::default()
    });
    let rs = kernel.register(
        Box::new(MiniRs {
            recoveries: Arc::clone(&recoveries),
        }),
        true,
    );
    assert_eq!(rs, Endpoint::Component(0));
    let w1 = kernel.register(Box::new(Worker::new(None)), false);
    let relay = kernel.register(Box::new(Worker::new(Some(w1))), false);
    assert_eq!(w1, Endpoint::Component(1));
    assert_eq!(relay, Endpoint::Component(2));
    kernel.init_components();
    (kernel, recoveries)
}

fn counter_of(kernel: &Kernel<Msg>, facts_idx: usize) -> u64 {
    kernel
        .audit_facts()
        .into_iter()
        .filter(|(c, k, _)| *c == "worker" && k == "counter")
        .map(|(_, _, v)| v)
        .nth(facts_idx)
        .expect("worker counter fact")
}

#[test]
fn user_request_roundtrip() {
    let (mut kernel, _) = build(PolicyKind::Enhanced, Instrumentation::WindowGated);
    kernel.send_user_request(Endpoint::Component(1), Msg::Echo(42), SyscallId(1), Pid(1));
    kernel.pump();
    let replies = kernel.take_user_replies();
    assert_eq!(replies, vec![(SyscallId(1), Pid(1), SysReply::Val(42))]);
    assert!(kernel.quiescent());
}

#[test]
fn crash_in_open_window_rolls_back_and_replies_ecrash() {
    let (mut kernel, recoveries) = build(PolicyKind::Enhanced, Instrumentation::WindowGated);
    kernel.set_fault_hook(Box::new(CrashAt {
        site: "worker.bump.post",
        always: false,
        fired: false,
    }));
    // Bump arrives from another component so the crash reply is a message.
    kernel.send_user_request(Endpoint::Component(1), Msg::Bump, SyscallId(1), Pid(1));
    kernel.pump();
    // The crash occurred *after* the counter increment: rollback must undo
    // it (the counter is 0 again), and the user gets ECRASH.
    let replies = kernel.take_user_replies();
    assert_eq!(
        replies,
        vec![(
            SyscallId(1),
            Pid(1),
            SysReply::Err(osiris_kernel::abi::Errno::ECRASH)
        )]
    );
    assert_eq!(counter_of(&kernel, 0), 0, "increment must be rolled back");
    assert_eq!(recoveries.load(Ordering::Relaxed), 1, "RS saw the crash");
    assert_eq!(kernel.metrics().recovered_rollback, 1);
    assert!(kernel.shutdown_state().is_none());
}

#[test]
fn crash_after_state_modifying_send_is_controlled_shutdown() {
    let (mut kernel, _) = build(PolicyKind::Enhanced, Instrumentation::WindowGated);
    kernel.set_fault_hook(Box::new(CrashAt {
        site: "worker.relay.post",
        always: false,
        fired: false,
    }));
    kernel.send_user_request(
        Endpoint::Component(2),
        Msg::BumpViaPeer,
        SyscallId(1),
        Pid(1),
    );
    kernel.pump();
    match kernel.shutdown_state() {
        Some(ShutdownKind::Controlled(reason)) => {
            assert!(reason.contains("worker"), "reason: {reason}")
        }
        other => panic!("expected controlled shutdown, got {other:?}"),
    }
}

#[test]
fn messages_sent_before_crash_are_delivered() {
    // The relay's Bump to the peer left before the crash: it must still be
    // processed (it is on the wire), even though the relay rolled... the
    // relay CANNOT roll back (window closed) — shutdown. But the peer's
    // inbox kept the message; under the *naive* policy the system continues
    // and the peer processes it.
    let (mut kernel, _) = build(PolicyKind::Naive, Instrumentation::WindowGated);
    kernel.set_fault_hook(Box::new(CrashAt {
        site: "worker.relay.post",
        always: false,
        fired: false,
    }));
    kernel.send_user_request(
        Endpoint::Component(2),
        Msg::BumpViaPeer,
        SyscallId(1),
        Pid(1),
    );
    kernel.pump();
    assert!(kernel.shutdown_state().is_none());
    assert_eq!(
        counter_of(&kernel, 0),
        1,
        "peer processed the in-flight Bump"
    );
    // Naive keeps the relay's half-applied +100 (the crash fired before
    // the deferred bookkeeping write).
    assert_eq!(counter_of(&kernel, 1), 100);
}

#[test]
fn stateless_restart_resets_state() {
    let (mut kernel, _) = build(PolicyKind::Stateless, Instrumentation::WindowGated);
    // Two successful bumps...
    kernel.send_user_request(Endpoint::Component(1), Msg::Bump, SyscallId(1), Pid(1));
    kernel.send_user_request(Endpoint::Component(1), Msg::Bump, SyscallId(2), Pid(1));
    kernel.pump();
    assert_eq!(counter_of(&kernel, 0), 2);
    // ...then a crash: stateless restart loses both.
    kernel.set_fault_hook(Box::new(CrashAt {
        site: "worker.bump.pre",
        always: false,
        fired: false,
    }));
    kernel.send_user_request(Endpoint::Component(1), Msg::Bump, SyscallId(3), Pid(1));
    kernel.pump();
    assert_eq!(
        counter_of(&kernel, 0),
        0,
        "stateless restart resets the counter"
    );
    assert_eq!(kernel.metrics().recovered_fresh, 1);
}

#[test]
fn persistent_fault_is_survived_by_discarding_each_request() {
    let (mut kernel, recoveries) = build(PolicyKind::Enhanced, Instrumentation::WindowGated);
    kernel.set_fault_hook(Box::new(CrashAt {
        site: "worker.bump.pre",
        always: true,
        fired: false,
    }));
    for i in 0..5 {
        kernel.send_user_request(Endpoint::Component(1), Msg::Bump, SyscallId(i), Pid(1));
    }
    kernel.pump();
    let replies = kernel.take_user_replies();
    assert_eq!(replies.len(), 5);
    assert!(replies
        .iter()
        .all(|(_, _, r)| *r == SysReply::Err(osiris_kernel::abi::Errno::ECRASH)));
    assert_eq!(
        recoveries.load(Ordering::Relaxed),
        5,
        "each request recovered"
    );
    assert!(
        kernel.shutdown_state().is_none(),
        "persistent faults never wedge the system"
    );
}

#[test]
fn timers_fire_and_mutate_state() {
    let (mut kernel, _) = build(PolicyKind::Enhanced, Instrumentation::WindowGated);
    kernel.send_user_request(Endpoint::Component(1), Msg::ArmTick, SyscallId(1), Pid(1));
    kernel.pump();
    assert_eq!(kernel.take_user_replies().len(), 1);
    assert!(kernel.has_pending_timers());
    let before = kernel.now();
    assert!(kernel.fire_next_timer());
    kernel.pump();
    assert!(
        kernel.now() >= before + 50,
        "clock advanced to the deadline"
    );
    assert_eq!(counter_of(&kernel, 0), 1000, "tick handler ran");
}

#[test]
fn timer_notification_crash_shuts_down_under_osiris_policies() {
    // A Tick is not a replyable request: error virtualization is not
    // possible, so the controlled shutdown path must be taken.
    let (mut kernel, _) = build(PolicyKind::Enhanced, Instrumentation::WindowGated);
    kernel.set_fault_hook(Box::new(CrashAt {
        site: "worker.tick",
        always: false,
        fired: false,
    }));
    kernel.send_user_request(Endpoint::Component(1), Msg::ArmTick, SyscallId(1), Pid(1));
    kernel.pump();
    let _ = kernel.take_user_replies();
    assert!(kernel.shutdown_state().is_none());
    assert!(kernel.fire_next_timer());
    kernel.pump();
    match kernel.shutdown_state() {
        Some(ShutdownKind::Controlled(_)) => {}
        other => panic!("expected controlled shutdown on timer crash, got {other:?}"),
    }
}

#[test]
fn non_state_modifying_send_keeps_enhanced_window_open() {
    // Crash after the read-only Peek: enhanced recovers (the +7 local write
    // is rolled back), pessimistic shuts down.
    let (mut kernel, _) = build(PolicyKind::Enhanced, Instrumentation::WindowGated);
    kernel.set_fault_hook(Box::new(CrashAt {
        site: "worker.peekpeer.post",
        always: false,
        fired: false,
    }));
    kernel.send_user_request(Endpoint::Component(2), Msg::PeekPeer, SyscallId(1), Pid(1));
    kernel.pump();
    let replies = kernel.take_user_replies();
    assert_eq!(
        replies,
        vec![(
            SyscallId(1),
            Pid(1),
            SysReply::Err(osiris_kernel::abi::Errno::ECRASH)
        )]
    );
    assert_eq!(counter_of(&kernel, 1), 0, "the +7 was rolled back");
    assert!(kernel.shutdown_state().is_none());

    let (mut kernel, _) = build(PolicyKind::Pessimistic, Instrumentation::WindowGated);
    kernel.set_fault_hook(Box::new(CrashAt {
        site: "worker.peekpeer.post",
        always: false,
        fired: false,
    }));
    kernel.send_user_request(Endpoint::Component(2), Msg::PeekPeer, SyscallId(1), Pid(1));
    kernel.pump();
    assert!(
        matches!(kernel.shutdown_state(), Some(ShutdownKind::Controlled(_))),
        "pessimistic closed at the Peek send"
    );
}

#[test]
fn instrumentation_off_still_recovers_nothing_is_logged() {
    // With instrumentation Off, windows open but nothing is logged; a crash
    // in-window cannot roll back writes. This mode exists only for
    // fault-free performance baselines — verify the accounting.
    let (mut kernel, _) = build(PolicyKind::Enhanced, Instrumentation::Off);
    kernel.send_user_request(Endpoint::Component(1), Msg::Bump, SyscallId(1), Pid(1));
    kernel.pump();
    let report = kernel
        .component_reports()
        .into_iter()
        .find(|r| r.name == "worker" && r.endpoint == 1)
        .expect("worker report");
    assert!(report.writes > 0);
    assert_eq!(report.undo_appends, 0, "Off must log nothing");
}

#[test]
fn instrumentation_always_logs_everything() {
    let (mut kernel, _) = build(PolicyKind::Enhanced, Instrumentation::Always);
    kernel.send_user_request(
        Endpoint::Component(2),
        Msg::BumpViaPeer,
        SyscallId(1),
        Pid(1),
    );
    kernel.pump();
    let relay = kernel
        .component_reports()
        .into_iter()
        .find(|r| r.name == "worker" && r.endpoint == 2)
        .expect("relay report");
    // The +100 write happens before the window closes; with Always the
    // writes after the close are logged too. Some logged writes may be
    // elided by the journal's coalescing, but every write is accounted as
    // either an append or a coalesced append — none escape the log.
    assert_eq!(
        relay.undo_appends + relay.coalesced_writes,
        relay.writes,
        "Always must log (or coalesce) every write"
    );
}

#[test]
fn always_overrides_gating_requests_and_counts_them() {
    // Under Always, the kernel force-logs at boot; any later
    // `set_logging(false)` (e.g. the Off-mode deliver path, or component
    // code gating itself) must be overridden — and visibly counted — rather
    // than silently ignored. Under WindowGated the same request succeeds and
    // the counter stays zero.
    let (mut kernel, _) = build(PolicyKind::Enhanced, Instrumentation::Always);
    kernel.send_user_request(Endpoint::Component(1), Msg::Bump, SyscallId(1), Pid(1));
    kernel.pump();
    let heap = kernel.heap_of("worker").expect("worker heap");
    assert!(
        heap.stats().gating_overrides > 0,
        "window completion gates off; Always must override and count it"
    );
    assert!(heap.logging(), "force-logging keeps the gate open");

    let (mut kernel, _) = build(PolicyKind::Enhanced, Instrumentation::WindowGated);
    kernel.send_user_request(Endpoint::Component(1), Msg::Bump, SyscallId(1), Pid(1));
    kernel.pump();
    let gated = kernel.heap_of("worker").expect("worker heap");
    assert_eq!(
        gated.stats().gating_overrides,
        0,
        "no force-logging, no overrides"
    );
    assert!(!gated.logging(), "the gate actually closed");
    // WindowGated logs strictly less than Always on the same schedule.
    let always_report = {
        let (mut k, _) = build(PolicyKind::Enhanced, Instrumentation::Always);
        k.send_user_request(
            Endpoint::Component(2),
            Msg::BumpViaPeer,
            SyscallId(1),
            Pid(1),
        );
        k.pump();
        k.component_reports()
            .into_iter()
            .find(|r| r.endpoint == 2)
            .expect("relay")
    };
    let gated_report = {
        let (mut k, _) = build(PolicyKind::Enhanced, Instrumentation::WindowGated);
        k.send_user_request(
            Endpoint::Component(2),
            Msg::BumpViaPeer,
            SyscallId(1),
            Pid(1),
        );
        k.pump();
        k.component_reports()
            .into_iter()
            .find(|r| r.endpoint == 2)
            .expect("relay")
    };
    assert_eq!(
        always_report.writes, gated_report.writes,
        "identical schedule"
    );
    assert!(
        always_report.undo_appends + always_report.coalesced_writes
            >= gated_report.undo_appends + gated_report.coalesced_writes,
        "Always logs at least as much as WindowGated"
    );
}

#[test]
fn gated_instrumentation_logs_only_in_window() {
    let (mut kernel, _) = build(PolicyKind::Pessimistic, Instrumentation::WindowGated);
    kernel.send_user_request(
        Endpoint::Component(2),
        Msg::BumpViaPeer,
        SyscallId(1),
        Pid(1),
    );
    kernel.pump();
    let relay = kernel
        .component_reports()
        .into_iter()
        .find(|r| r.name == "worker" && r.endpoint == 2)
        .expect("relay report");
    assert!(
        relay.undo_appends < relay.writes,
        "pessimistic gating must skip post-close writes ({} vs {})",
        relay.undo_appends,
        relay.writes
    );
}

#[test]
fn endpoint_lookup_and_reports() {
    let (kernel, _) = build(PolicyKind::Enhanced, Instrumentation::WindowGated);
    assert_eq!(kernel.endpoint_of("mini-rs"), Some(Endpoint::Component(0)));
    assert_eq!(kernel.endpoint_of("nope"), None);
    assert_eq!(kernel.component_count(), 3);
    assert!(kernel.heap_of("worker").is_some());
    let reports = kernel.component_reports();
    assert_eq!(reports.len(), 3);
    assert!(reports.iter().all(|r| r.crashes == 0));
}

#[test]
fn rs_crash_is_recovered_by_the_kernel_itself() {
    // A fault in the privileged component while it is idle-processing an
    // ordinary message: the kernel recovers it directly.
    let (mut kernel, _) = build(PolicyKind::Enhanced, Instrumentation::WindowGated);
    struct NoOpHook;
    impl FaultHook for NoOpHook {
        fn on_site(&mut self, probe: &Probe) -> FaultEffect {
            let _ = probe;
            FaultEffect::None
        }
    }
    // MiniRs has no sites; exercise the spurious-recovery path instead:
    // recover() on a non-crashed target must be a harmless no-op.
    kernel.set_fault_hook(Box::new(NoOpHook));
    kernel.send_user_request(Endpoint::Component(1), Msg::Echo(9), SyscallId(1), Pid(1));
    kernel.pump();
    assert!(kernel.shutdown_state().is_none());
    assert!(!kernel.recovering());
}
