//! Kernel- and component-level metrics backing the evaluation tables.
//!
//! Since the unified registry landed, [`KernelMetrics`] and
//! [`ComponentReport`] are *views*: the kernel assembles them on demand
//! from its `osiris-metrics` registry series (see
//! `Kernel::metrics_handle`), so these structs, the Prometheus/JSON
//! exports, and the campaign observer all read the same counters.

use osiris_core::WindowStats;
use osiris_trace::HistSummary;

/// Per-component report: the raw material for Tables I and VI.
#[derive(Clone, Debug)]
pub struct ComponentReport {
    /// Component name.
    pub name: &'static str,
    /// Endpoint index.
    pub endpoint: u8,
    /// Recovery-window statistics (coverage counters).
    pub window: WindowStats,
    /// Virtual cycles spent running this component's handlers.
    pub cycles: u64,
    /// Messages handled.
    pub messages: u64,
    /// Current resident heap size in bytes.
    pub heap_bytes: usize,
    /// Size of the pristine clone image kept for recovery (Table VI
    /// "+clone", per-copy accounting: what a non-shared spare copy would
    /// cost).
    pub clone_bytes: usize,
    /// Deduplicated store bytes attributed to this component's clone image:
    /// each chunk in the content-addressed pool is charged to the first
    /// component (in endpoint order) referencing it, so these sum to the
    /// pool's resident total (Table VI "+clone" deduped accounting).
    pub clone_dedup_bytes: usize,
    /// Peak undo-log size (Table VI "+undo log"), sampled at window close
    /// and floored at the raw high-water mark. Under window-gated
    /// instrumentation the two coincide; under `Always` this excludes
    /// out-of-window log growth, making it the accurate Table VI figure
    /// for long runs.
    pub undo_window_peak_bytes: usize,
    /// Distribution of virtual cycles charged per recovery.
    pub recovery_latency: HistSummary,
    /// Distribution of in-window cycles per completed request.
    pub window_cycles: HistSummary,
    /// Distribution of undo bytes appended per completed request window.
    pub undo_window_bytes: HistSummary,
    /// Total logical writes and logged writes.
    pub writes: u64,
    /// Writes that appended an undo record.
    pub undo_appends: u64,
    /// Logged writes elided by the journal's write coalescing: they paid the
    /// memory-write cost but no `undo_append` cost.
    pub coalesced_writes: u64,
    /// Times this component crashed.
    pub crashes: u64,
    /// Times this component was recovered.
    pub recoveries: u64,
}

/// System-wide counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelMetrics {
    /// Messages delivered between endpoints.
    pub ipc_delivered: u64,
    /// User syscalls submitted.
    pub syscalls: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Component crashes observed (fail-stop panics).
    pub crashes: u64,
    /// Components quarantined by the escalation ladder.
    pub quarantines: u64,
    /// Components detected hung.
    pub hangs: u64,
    /// Recoveries by rollback + error virtualization.
    pub recovered_rollback: u64,
    /// Recoveries by fresh (stateless) restart.
    pub recovered_fresh: u64,
    /// Recoveries keeping crash-time state (naive).
    pub recovered_naive: u64,
    /// Keep-state restarts of a quiescent component the watchdog declared
    /// dead (its transaction had committed; only the reply was lost or
    /// tampered with, so retaining the heap is sound).
    pub recovered_quiescent: u64,
    /// Controlled shutdowns performed.
    pub controlled_shutdowns: u64,
    /// Virtual cycles spent executing recovery phases.
    pub recovery_cycles: u64,
    /// Watchdog deadlines armed on outbound requests.
    pub wd_armed: u64,
    /// Armed deadlines that expired before a reply arrived.
    pub wd_expired: u64,
    /// Heartbeat probes sent to slow-but-alive components.
    pub wd_probes: u64,
    /// Watchdog verdicts delivered, all categories (hung, slow,
    /// reply-lost, corrupt-reply).
    pub wd_verdicts: u64,
    /// Replies rejected by the integrity check.
    pub wd_replies_rejected: u64,
    /// Transparent retries granted after a fail-silent verdict.
    pub retries_granted: u64,
    /// Retries denied (budget exhausted, target unusable, or a
    /// state-modifying request without an intervening recovery).
    pub retries_denied: u64,
    /// Requests whose retry budget ran out entirely.
    pub retries_exhausted: u64,
}

/// How the system ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShutdownKind {
    /// A controlled shutdown: consistency could not be guaranteed, so the
    /// system stopped itself cleanly (paper §IV-C).
    Controlled(String),
    /// An uncontrolled crash: a fault the recovery machinery could not
    /// contain (e.g. a second fault during recovery).
    Crash(String),
}

impl ShutdownKind {
    /// Whether this was the controlled variant.
    pub fn is_controlled(&self) -> bool {
        matches!(self, ShutdownKind::Controlled(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_kind_predicates() {
        assert!(ShutdownKind::Controlled("x".into()).is_controlled());
        assert!(!ShutdownKind::Crash("y".into()).is_controlled());
    }
}
