//! The user-process host: runs workload programs as real threads in strict
//! lock-step with a simulated OS.
//!
//! Programs are ordinary Rust closures that issue syscalls through a
//! [`Sys`] handle. Exactly one process executes at any instant: the host
//! resumes a process, then blocks until that process issues its next action
//! (syscall, compute, exit). Syscall arrival order is therefore fully
//! deterministic, which the fault-injection experiments depend on.
//!
//! The host is generic over [`OsEngine`], implemented both by the
//! compartmentalized OSIRIS OS (`osiris-servers`) and by the monolithic
//! baseline (`osiris-monolith`).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::abi::{Errno, Fd, FileStat, OpenFlags, Pid, SeekFrom, Signal, SysReply, Syscall};
use crate::message::SyscallId;
use crate::metrics::ShutdownKind;

/// A simulated operating system, as seen by the process host.
pub trait OsEngine {
    /// Submits a user syscall. Replies arrive later via [`OsEngine::pump`].
    fn submit(&mut self, sid: SyscallId, pid: Pid, call: Syscall);
    /// Runs the OS until quiescent; returns completed syscall replies in
    /// deterministic order.
    fn pump(&mut self) -> Vec<(SyscallId, Pid, SysReply)>;
    /// Kill events: processes the OS decided to terminate since last call.
    fn take_kill_events(&mut self) -> Vec<Pid>;
    /// Fires the next pending timer, if any.
    fn fire_next_timer(&mut self) -> bool;
    /// The shutdown state, if the OS has stopped.
    fn shutdown_state(&self) -> Option<ShutdownKind>;
    /// Current virtual time.
    fn now(&self) -> u64;
    /// Charges user-level computation to the virtual clock.
    fn charge_user(&mut self, units: u64);
}

/// A user program: receives its [`Sys`] handle, returns an exit code.
pub type ProgramFn = dyn Fn(&mut Sys) -> i32 + Send + Sync;

/// Registry of named programs (the "filesystem binaries" of the simulator).
#[derive(Default, Clone)]
pub struct ProgramRegistry {
    map: HashMap<String, Arc<ProgramFn>>,
}

impl std::fmt::Debug for ProgramRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<_> = self.map.keys().collect();
        names.sort();
        f.debug_struct("ProgramRegistry")
            .field("programs", &names)
            .finish()
    }
}

impl ProgramRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `prog` under `name`, replacing any previous program.
    pub fn register<F>(&mut self, name: &str, prog: F)
    where
        F: Fn(&mut Sys) -> i32 + Send + Sync + 'static,
    {
        self.map.insert(name.to_string(), Arc::new(prog));
    }

    /// Looks up a program.
    pub fn get(&self, name: &str) -> Option<Arc<ProgramFn>> {
        self.map.get(name).cloned()
    }

    /// Registered program names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<_> = self.map.keys().cloned().collect();
        v.sort();
        v
    }
}

/// Closure run by a forked child (see [`Sys::fork_run`]).
pub type ForkFn = Box<dyn FnOnce(&mut Sys) -> i32 + Send>;

enum ProcAction {
    Syscall(Syscall),
    Fork(ForkFn),
    Compute(u64),
    Done(i32),
}

enum ProcInput {
    Reply(SysReply),
    Killed,
}

/// Panic payload used to unwind a user-program thread.
pub(crate) enum ProcExit {
    Exited(i32),
    Killed,
}

/// The syscall interface handed to user programs.
///
/// Every method issues a request to the simulated OS and blocks (the real
/// thread parks) until the reply arrives. `Err(Errno::ECRASH)` means the
/// servicing OS component crashed and was recovered; well-written programs
/// treat it like any other error (paper §III-C).
pub struct Sys {
    pid: Pid,
    args: Vec<String>,
    registry: Arc<ProgramRegistry>,
    to_host: Sender<(Pid, ProcAction)>,
    from_host: Receiver<ProcInput>,
    retry_ecrash: bool,
    retry_budget: u32,
    retry_backoff_base: u64,
    retry_backoff_max: u64,
}

impl std::fmt::Debug for Sys {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sys")
            .field("pid", &self.pid)
            .field("args", &self.args)
            .finish()
    }
}

impl Sys {
    /// The calling process's pid (as assigned at creation; also available
    /// via the `getpid` syscall).
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The program arguments.
    pub fn args(&self) -> &[String] {
        &self.args
    }

    /// Makes every syscall transparently retry on `ECRASH` (a crashed and
    /// recovered server). Used by the service-disruption experiment, where
    /// well-written programs are expected to handle the error and continue
    /// (paper §VI-E runs the benchmark to completion under fault load).
    pub fn set_retry_ecrash(&mut self, retry: bool) {
        self.retry_ecrash = retry;
    }

    /// Backoff (in compute units) before retry number `attempt`: the first
    /// retry is immediate — a single crash recovers before the retried call
    /// arrives — then the delay doubles up to the configured cap.
    fn retry_backoff(&self, attempt: u32) -> u64 {
        if attempt <= 1 {
            return 0;
        }
        let doublings = (attempt - 2).min(16);
        self.retry_backoff_base
            .saturating_mul(1u64 << doublings)
            .min(self.retry_backoff_max)
    }

    fn call(&mut self, sc: Syscall) -> Result<SysReply, Errno> {
        let mut attempts: u32 = 0;
        loop {
            if self
                .to_host
                .send((self.pid, ProcAction::Syscall(sc.clone())))
                .is_err()
            {
                std::panic::panic_any(ProcExit::Killed);
            }
            match self.from_host.recv() {
                Ok(ProcInput::Reply(SysReply::Err(Errno::EKILLED))) | Ok(ProcInput::Killed) => {
                    std::panic::panic_any(ProcExit::Killed)
                }
                Ok(ProcInput::Reply(SysReply::Err(Errno::ECRASH))) if self.retry_ecrash => {
                    // Bounded retry: a crash-looping (or quarantined) server
                    // keeps answering ECRASH; surface it once the per-call
                    // budget is spent instead of livelocking.
                    attempts += 1;
                    if attempts >= self.retry_budget {
                        return Err(Errno::ECRASH);
                    }
                    let backoff = self.retry_backoff(attempts);
                    if backoff > 0 {
                        self.compute(backoff);
                    }
                    continue;
                }
                Ok(ProcInput::Reply(SysReply::Err(e))) => return Err(e),
                Ok(ProcInput::Reply(r)) => return Ok(r),
                Err(_) => std::panic::panic_any(ProcExit::Killed),
            }
        }
    }

    /// Performs `units` of pure computation (advances virtual time only).
    pub fn compute(&mut self, units: u64) {
        if self
            .to_host
            .send((self.pid, ProcAction::Compute(units)))
            .is_err()
        {
            std::panic::panic_any(ProcExit::Killed);
        }
        match self.from_host.recv() {
            Ok(ProcInput::Reply(_)) => {}
            _ => std::panic::panic_any(ProcExit::Killed),
        }
    }

    /// Terminates the calling process immediately with `code`.
    pub fn exit(&mut self, code: i32) -> ! {
        std::panic::panic_any(ProcExit::Exited(code));
    }

    // --- process management ---

    /// Spawns a new process running registered program `prog` (fork+exec).
    ///
    /// # Errors
    ///
    /// `ENOENT` if no such program is registered; otherwise whatever the
    /// process manager reports (`EAGAIN`, `ECRASH`, …).
    pub fn spawn(&mut self, prog: &str, args: &[&str]) -> Result<Pid, Errno> {
        if self.registry.get(prog).is_none() {
            return Err(Errno::ENOENT);
        }
        let call = Syscall::Spawn {
            prog: prog.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
        };
        match self.call(call)? {
            SysReply::Proc(pid) => Ok(pid),
            other => panic!("spawn: unexpected reply {:?}", other),
        }
    }

    /// Forks the calling process; the child runs `child_fn` and exits with
    /// its return value. Returns the child's pid to the parent.
    ///
    /// # Errors
    ///
    /// Propagates process-manager errors (`EAGAIN`, `ECRASH`, …).
    pub fn fork_run<F>(&mut self, child_fn: F) -> Result<Pid, Errno>
    where
        F: FnOnce(&mut Sys) -> i32 + Send + 'static,
    {
        if self
            .to_host
            .send((self.pid, ProcAction::Fork(Box::new(child_fn))))
            .is_err()
        {
            std::panic::panic_any(ProcExit::Killed);
        }
        match self.from_host.recv() {
            Ok(ProcInput::Reply(SysReply::Proc(pid))) => Ok(pid),
            Ok(ProcInput::Reply(SysReply::Err(Errno::EKILLED))) | Ok(ProcInput::Killed) => {
                std::panic::panic_any(ProcExit::Killed)
            }
            Ok(ProcInput::Reply(SysReply::Err(e))) => Err(e),
            Ok(ProcInput::Reply(other)) => panic!("fork: unexpected reply {:?}", other),
            Err(_) => std::panic::panic_any(ProcExit::Killed),
        }
    }

    /// Replaces the current process image with registered program `prog`.
    /// On success this never returns: the new program runs and the process
    /// exits with its return value.
    ///
    /// # Errors
    ///
    /// `ENOENT` if the program is not registered; process-manager errors
    /// otherwise.
    pub fn exec(&mut self, prog: &str, args: &[&str]) -> Result<std::convert::Infallible, Errno> {
        let Some(f) = self.registry.get(prog) else {
            return Err(Errno::ENOENT);
        };
        let call = Syscall::Exec {
            prog: prog.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
        };
        self.call(call)?;
        self.args = args.iter().map(|s| s.to_string()).collect();
        let code = f(self);
        std::panic::panic_any(ProcExit::Exited(code));
    }

    /// Waits for the specific child `pid` to exit; returns its exit code.
    ///
    /// # Errors
    ///
    /// `ECHILD` if `pid` is not a child of the caller.
    pub fn waitpid(&mut self, pid: Pid) -> Result<i32, Errno> {
        match self.call(Syscall::WaitPid { pid })? {
            SysReply::Exited(_, code) => Ok(code),
            other => panic!("waitpid: unexpected reply {:?}", other),
        }
    }

    /// Waits for any child to exit; returns `(pid, exit_code)`.
    ///
    /// # Errors
    ///
    /// `ECHILD` if the caller has no children.
    pub fn wait_any(&mut self) -> Result<(Pid, i32), Errno> {
        match self.call(Syscall::WaitAny)? {
            SysReply::Exited(pid, code) => Ok((pid, code)),
            other => panic!("wait_any: unexpected reply {:?}", other),
        }
    }

    /// Sends `sig` to process `pid`.
    ///
    /// # Errors
    ///
    /// `ESRCH` if no such process.
    pub fn kill(&mut self, pid: Pid, sig: Signal) -> Result<(), Errno> {
        self.call(Syscall::Kill { pid, sig }).map(|_| ())
    }

    /// Returns the caller's pid as known to the process manager.
    ///
    /// # Errors
    ///
    /// `ECRASH` if PM crashed while answering.
    pub fn getpid(&mut self) -> Result<Pid, Errno> {
        match self.call(Syscall::GetPid)? {
            SysReply::Proc(pid) => Ok(pid),
            other => panic!("getpid: unexpected reply {:?}", other),
        }
    }

    /// Returns the caller's parent pid.
    ///
    /// # Errors
    ///
    /// `ESRCH` if the caller is unknown to PM (should not happen).
    pub fn getppid(&mut self) -> Result<Pid, Errno> {
        match self.call(Syscall::GetPPid)? {
            SysReply::Proc(pid) => Ok(pid),
            other => panic!("getppid: unexpected reply {:?}", other),
        }
    }

    /// Masks or unmasks `sig` for the caller.
    ///
    /// # Errors
    ///
    /// `EINVAL` for `SigKill`, which cannot be masked.
    pub fn sigmask(&mut self, sig: Signal, masked: bool) -> Result<(), Errno> {
        self.call(Syscall::SigMask { sig, masked }).map(|_| ())
    }

    /// Fetches and clears the caller's pending signals.
    ///
    /// # Errors
    ///
    /// Process-manager errors.
    pub fn sigpending(&mut self) -> Result<Vec<Signal>, Errno> {
        match self.call(Syscall::SigPending)? {
            SysReply::Signals(s) => Ok(s),
            other => panic!("sigpending: unexpected reply {:?}", other),
        }
    }

    /// Sleeps for `ticks` of virtual time.
    ///
    /// # Errors
    ///
    /// Process-manager errors.
    pub fn sleep(&mut self, ticks: u64) -> Result<(), Errno> {
        self.call(Syscall::Sleep { ticks }).map(|_| ())
    }

    // --- memory ---

    /// Adjusts the caller's data segment; returns the new page count.
    ///
    /// # Errors
    ///
    /// `ENOMEM` if the frame pool is exhausted or the shrink underflows.
    pub fn brk(&mut self, pages: i64) -> Result<u64, Errno> {
        match self.call(Syscall::Brk { pages })? {
            SysReply::Val(v) => Ok(v as u64),
            other => panic!("brk: unexpected reply {:?}", other),
        }
    }

    /// Maps `pages` fresh pages; returns the mapping id.
    ///
    /// # Errors
    ///
    /// `ENOMEM` if the frame pool is exhausted.
    pub fn mmap(&mut self, pages: u64) -> Result<u64, Errno> {
        match self.call(Syscall::Mmap { pages })? {
            SysReply::Val(v) => Ok(v as u64),
            other => panic!("mmap: unexpected reply {:?}", other),
        }
    }

    /// Unmaps a mapping created by [`Sys::mmap`].
    ///
    /// # Errors
    ///
    /// `EINVAL` if the mapping id is unknown.
    pub fn munmap(&mut self, id: u64) -> Result<(), Errno> {
        self.call(Syscall::Munmap { id }).map(|_| ())
    }

    /// Returns the caller's resident page count.
    ///
    /// # Errors
    ///
    /// Memory-manager errors.
    pub fn vmstat(&mut self) -> Result<u64, Errno> {
        match self.call(Syscall::VmStat)? {
            SysReply::Val(v) => Ok(v as u64),
            other => panic!("vmstat: unexpected reply {:?}", other),
        }
    }

    // --- files ---

    /// Opens `path`.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `EISDIR`, `EMFILE`, `ECRASH`, …
    pub fn open(&mut self, path: &str, flags: OpenFlags) -> Result<Fd, Errno> {
        match self.call(Syscall::Open {
            path: path.to_string(),
            flags,
        })? {
            SysReply::Desc(fd) => Ok(fd),
            other => panic!("open: unexpected reply {:?}", other),
        }
    }

    /// Closes `fd`.
    ///
    /// # Errors
    ///
    /// `EBADF` if the descriptor is not open.
    pub fn close(&mut self, fd: Fd) -> Result<(), Errno> {
        self.call(Syscall::Close { fd }).map(|_| ())
    }

    /// Reads up to `len` bytes. An empty vector signals end-of-file.
    /// Blocks on an empty pipe with live writers.
    ///
    /// # Errors
    ///
    /// `EBADF`, `ECRASH`, …
    pub fn read(&mut self, fd: Fd, len: u32) -> Result<Vec<u8>, Errno> {
        match self.call(Syscall::Read { fd, len })? {
            SysReply::Data(d) => Ok(d),
            other => panic!("read: unexpected reply {:?}", other),
        }
    }

    /// Writes `bytes`; returns the number written.
    ///
    /// # Errors
    ///
    /// `EBADF`, `EPIPE` (no readers left), `ENOSPC`, …
    pub fn write(&mut self, fd: Fd, bytes: &[u8]) -> Result<u32, Errno> {
        match self.call(Syscall::Write {
            fd,
            bytes: bytes.to_vec(),
        })? {
            SysReply::Val(n) => Ok(n as u32),
            other => panic!("write: unexpected reply {:?}", other),
        }
    }

    /// Repositions the file offset; returns the new absolute offset.
    ///
    /// # Errors
    ///
    /// `EBADF`, `EINVAL` (seek before start), `EPIPE` on pipes.
    pub fn seek(&mut self, fd: Fd, from: SeekFrom) -> Result<u64, Errno> {
        match self.call(Syscall::Seek { fd, from })? {
            SysReply::Val(v) => Ok(v as u64),
            other => panic!("seek: unexpected reply {:?}", other),
        }
    }

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `EISDIR`, `EBUSY` (still open).
    pub fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        self.call(Syscall::Unlink {
            path: path.to_string(),
        })
        .map(|_| ())
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// `EEXIST`, `ENOENT` (missing parent), `ENOTDIR`.
    pub fn mkdir(&mut self, path: &str) -> Result<(), Errno> {
        self.call(Syscall::Mkdir {
            path: path.to_string(),
        })
        .map(|_| ())
    }

    /// Lists a directory's entries.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `ENOTDIR`.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<String>, Errno> {
        match self.call(Syscall::ReadDir {
            path: path.to_string(),
        })? {
            SysReply::Names(n) => Ok(n),
            other => panic!("readdir: unexpected reply {:?}", other),
        }
    }

    /// Stats a path.
    ///
    /// # Errors
    ///
    /// `ENOENT`.
    pub fn stat(&mut self, path: &str) -> Result<FileStat, Errno> {
        match self.call(Syscall::Stat {
            path: path.to_string(),
        })? {
            SysReply::StatInfo(s) => Ok(s),
            other => panic!("stat: unexpected reply {:?}", other),
        }
    }

    /// Renames a file.
    ///
    /// # Errors
    ///
    /// `ENOENT`, `EISDIR`, `EBUSY`.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), Errno> {
        self.call(Syscall::Rename {
            from: from.to_string(),
            to: to.to_string(),
        })
        .map(|_| ())
    }

    /// Creates a pipe; returns `(read_end, write_end)`.
    ///
    /// # Errors
    ///
    /// `EMFILE`, `ECRASH`.
    pub fn pipe(&mut self) -> Result<(Fd, Fd), Errno> {
        match self.call(Syscall::Pipe)? {
            SysReply::TwoDesc(r, w) => Ok((r, w)),
            other => panic!("pipe: unexpected reply {:?}", other),
        }
    }

    /// Duplicates a descriptor.
    ///
    /// # Errors
    ///
    /// `EBADF`, `EMFILE`.
    pub fn dup(&mut self, fd: Fd) -> Result<Fd, Errno> {
        match self.call(Syscall::Dup { fd })? {
            SysReply::Desc(d) => Ok(d),
            other => panic!("dup: unexpected reply {:?}", other),
        }
    }

    /// Flushes a file's dirty cached blocks to the disk driver.
    ///
    /// # Errors
    ///
    /// `EBADF`, `EIO`.
    pub fn fsync(&mut self, fd: Fd) -> Result<(), Errno> {
        self.call(Syscall::Fsync { fd }).map(|_| ())
    }

    // --- data store ---

    /// Stores `value` under `key` in the data store.
    ///
    /// # Errors
    ///
    /// `ENOSPC`, `ECRASH`.
    pub fn ds_put(&mut self, key: &str, value: &[u8]) -> Result<(), Errno> {
        self.call(Syscall::DsPut {
            key: key.to_string(),
            value: value.to_vec(),
        })
        .map(|_| ())
    }

    /// Retrieves the value stored under `key`.
    ///
    /// # Errors
    ///
    /// `ENOKEY` if absent.
    pub fn ds_get(&mut self, key: &str) -> Result<Vec<u8>, Errno> {
        match self.call(Syscall::DsGet {
            key: key.to_string(),
        })? {
            SysReply::Data(d) => Ok(d),
            other => panic!("ds_get: unexpected reply {:?}", other),
        }
    }

    /// Deletes `key` from the data store.
    ///
    /// # Errors
    ///
    /// `ENOKEY` if absent.
    pub fn ds_del(&mut self, key: &str) -> Result<(), Errno> {
        self.call(Syscall::DsDel {
            key: key.to_string(),
        })
        .map(|_| ())
    }

    /// Lists data-store keys with the given prefix.
    ///
    /// # Errors
    ///
    /// `ECRASH`.
    pub fn ds_list(&mut self, prefix: &str) -> Result<Vec<String>, Errno> {
        match self.call(Syscall::DsList {
            prefix: prefix.to_string(),
        })? {
            SysReply::Names(n) => Ok(n),
            other => panic!("ds_list: unexpected reply {:?}", other),
        }
    }
}

/// How a full workload run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every process exited; per-pid exit codes and init's code.
    Completed {
        /// Exit code of the root (init) process.
        init_code: i32,
        /// Exit codes of all processes, keyed by raw pid.
        exit_codes: BTreeMap<u32, i32>,
    },
    /// The OS stopped itself (controlled) or crashed (uncontrolled).
    Shutdown(ShutdownKind),
    /// No process could make progress and no timer resolved it.
    Hang(String),
}

impl RunOutcome {
    /// Whether the run completed (regardless of exit codes).
    pub fn completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }
}

/// Host limits (defence against livelock under injected faults).
#[derive(Clone, Copy, Debug)]
pub struct HostConfig {
    /// Abort the run once virtual time exceeds this.
    pub max_virtual_time: u64,
    /// Declare a hang after this many consecutive timer fires yielding no
    /// process progress.
    pub max_idle_timer_fires: u32,
    /// Per-call budget for transparent `ECRASH` retries (see
    /// [`Sys::set_retry_ecrash`]): after this many failed attempts of one
    /// call, `ECRASH` is surfaced to the program. The default is far above
    /// what the §VI-E service-disruption runs need (their first, immediate
    /// retry lands after recovery completes) while still bounding a
    /// persistent crash loop.
    pub ecrash_retry_budget: u32,
    /// Virtual-time backoff (compute units) before the second retry of one
    /// call; doubles on each further retry. The first retry is immediate.
    pub ecrash_backoff_base: u64,
    /// Cap on the exponential retry backoff.
    pub ecrash_backoff_max: u64,
    /// Log every process action and reply to stderr. The
    /// `OSIRIS_HOST_TRACE=1` environment variable forces this on.
    pub verbose: bool,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            max_virtual_time: 500_000_000_000,
            max_idle_timer_fires: 10_000,
            ecrash_retry_budget: 64,
            ecrash_backoff_base: 1_000,
            ecrash_backoff_max: 250_000,
            verbose: false,
        }
    }
}

enum Resume {
    Reply(Pid, SysReply),
    Start(Pid, Arc<ProgramFn>, Vec<String>),
    StartFork(Pid, ForkFn),
}

struct ProcEntry {
    input_tx: Sender<ProcInput>,
    handle: Option<JoinHandle<()>>,
    blocked_on: Option<SyscallId>,
}

enum PendingKind {
    Plain,
    Spawn { prog: String, args: Vec<String> },
    Fork { f: Option<ForkFn> },
}

struct PendingCall {
    pid: Pid,
    kind: PendingKind,
}

/// Runs workload programs against an [`OsEngine`] in deterministic
/// lock-step.
pub struct Host<E: OsEngine> {
    engine: E,
    registry: Arc<ProgramRegistry>,
    cfg: HostConfig,
}

impl<E: OsEngine> Host<E> {
    /// Creates a host over `engine` with the given program registry.
    pub fn new(engine: E, registry: ProgramRegistry) -> Self {
        Host {
            engine,
            registry: Arc::new(registry),
            cfg: HostConfig::default(),
        }
    }

    /// Overrides the host limits.
    pub fn with_config(mut self, cfg: HostConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The wrapped engine (metrics inspection after a run).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Consumes the host, returning the engine.
    pub fn into_engine(self) -> E {
        self.engine
    }

    /// Boots the workload: starts `root_prog` as the init process (pid 1,
    /// pre-created by the OS at boot) and runs until every process exits,
    /// the OS shuts down, or no progress is possible.
    ///
    /// Set `OSIRIS_HOST_TRACE=1` to log every action and reply to stderr.
    ///
    /// # Panics
    ///
    /// Panics if `root_prog` is not registered.
    pub fn run(&mut self, root_prog: &str, root_args: &[&str]) -> RunOutcome {
        let trace =
            self.cfg.verbose || std::env::var_os("OSIRIS_HOST_TRACE").is_some_and(|v| v == "1");
        let root = self
            .registry
            .get(root_prog)
            .unwrap_or_else(|| panic!("program `{}` not registered", root_prog));

        let (action_tx, action_rx) = channel::<(Pid, ProcAction)>();
        let mut procs: HashMap<Pid, ProcEntry> = HashMap::new();
        let mut dead: HashSet<Pid> = HashSet::new();
        let mut exit_codes: BTreeMap<u32, i32> = BTreeMap::new();
        let mut pending: HashMap<SyscallId, PendingCall> = HashMap::new();
        let mut resume_q: VecDeque<Resume> = VecDeque::new();
        let mut running: Option<Pid> = None;
        let mut next_sid: u64 = 0;
        // Replies/kills discovered while firing idle timers, carried back to
        // the single reply-handling path at the top of the loop.
        let mut carried_replies: Vec<(SyscallId, Pid, SysReply)> = Vec::new();
        let mut carried_kills: Vec<Pid> = Vec::new();

        let root_args: Vec<String> = root_args.iter().map(|s| s.to_string()).collect();
        resume_q.push_back(Resume::Start(Pid::INIT, root, root_args));

        let outcome = loop {
            // Phase 1: if a process is running, wait for its next action.
            if let Some(pid) = running {
                let Ok((apid, action)) = action_rx.recv() else {
                    break RunOutcome::Hang("all process threads vanished".into());
                };
                debug_assert_eq!(apid, pid, "lock-step violation");
                if trace {
                    let what = match &action {
                        ProcAction::Compute(u) => format!("compute({})", u),
                        ProcAction::Syscall(sc) => format!("syscall {}", sc.name()),
                        ProcAction::Fork(_) => "fork".to_string(),
                        ProcAction::Done(c) => format!("done({})", c),
                    };
                    eprintln!("[host] {} -> {}", pid, what);
                }
                match action {
                    ProcAction::Compute(units) => {
                        self.engine.charge_user(units);
                        if dead.contains(&pid) {
                            let _ = procs[&pid].input_tx.send(ProcInput::Killed);
                            running = None;
                        } else {
                            let _ = procs[&pid].input_tx.send(ProcInput::Reply(SysReply::Ok));
                            // Still running: loop back and await its next action.
                        }
                    }
                    ProcAction::Syscall(sc) => {
                        running = None;
                        if dead.contains(&pid) {
                            let _ = procs[&pid].input_tx.send(ProcInput::Killed);
                        } else if matches!(sc, Syscall::Exit { .. }) {
                            // One-way: no reply will come.
                            next_sid += 1;
                            self.engine.submit(SyscallId(next_sid), pid, sc);
                        } else {
                            next_sid += 1;
                            let sid = SyscallId(next_sid);
                            pending.insert(
                                sid,
                                PendingCall {
                                    pid,
                                    kind: PendingKind::Plain,
                                },
                            );
                            if let Some(p) = procs.get_mut(&pid) {
                                p.blocked_on = Some(sid);
                            }
                            // Spawn carries host-side info to start the child
                            // when PM confirms.
                            if let Syscall::Spawn { ref prog, ref args } = sc {
                                pending.insert(
                                    sid,
                                    PendingCall {
                                        pid,
                                        kind: PendingKind::Spawn {
                                            prog: prog.clone(),
                                            args: args.clone(),
                                        },
                                    },
                                );
                            }
                            self.engine.submit(sid, pid, sc);
                        }
                    }
                    ProcAction::Fork(f) => {
                        running = None;
                        if dead.contains(&pid) {
                            let _ = procs[&pid].input_tx.send(ProcInput::Killed);
                        } else {
                            next_sid += 1;
                            let sid = SyscallId(next_sid);
                            pending.insert(
                                sid,
                                PendingCall {
                                    pid,
                                    kind: PendingKind::Fork { f: Some(f) },
                                },
                            );
                            if let Some(p) = procs.get_mut(&pid) {
                                p.blocked_on = Some(sid);
                            }
                            self.engine.submit(sid, pid, Syscall::Fork);
                        }
                    }
                    ProcAction::Done(code) => {
                        running = None;
                        exit_codes.insert(pid.0, code);
                        if !dead.contains(&pid) {
                            dead.insert(pid);
                            next_sid += 1;
                            self.engine
                                .submit(SyscallId(next_sid), pid, Syscall::Exit { code });
                        }
                        if let Some(p) = procs.get_mut(&pid) {
                            p.blocked_on = None;
                        }
                    }
                }
                continue;
            }

            // Phase 2: nobody is running — let the OS work and collect
            // replies / kill events (including any carried over from the
            // idle timer loop below).
            let mut replies = std::mem::take(&mut carried_replies);
            replies.extend(self.engine.pump());
            let mut kills = std::mem::take(&mut carried_kills);
            kills.extend(self.engine.take_kill_events());
            for victim in kills {
                if dead.insert(victim) {
                    if let Some(p) = procs.get(&victim) {
                        if p.blocked_on.is_some() {
                            let _ = p.input_tx.send(ProcInput::Killed);
                        }
                    }
                    exit_codes.entry(victim.0).or_insert(-9);
                }
            }
            for (sid, pid, reply) in replies {
                if trace {
                    eprintln!("[host] reply to {} ({:?}): {:?}", pid, sid, reply);
                }
                let Some(call) = pending.remove(&sid) else {
                    continue;
                };
                debug_assert_eq!(call.pid, pid);
                if let Some(p) = procs.get_mut(&pid) {
                    if p.blocked_on == Some(sid) {
                        p.blocked_on = None;
                    }
                }
                match call.kind {
                    PendingKind::Plain => {
                        if !dead.contains(&pid) {
                            resume_q.push_back(Resume::Reply(pid, reply));
                        }
                    }
                    PendingKind::Spawn { prog, args } => {
                        if let SysReply::Proc(child) = reply {
                            let f = self
                                .registry
                                .get(&prog)
                                .expect("spawn validated against the registry");
                            if !dead.contains(&pid) {
                                resume_q.push_back(Resume::Reply(pid, SysReply::Proc(child)));
                            }
                            resume_q.push_back(Resume::Start(child, f, args));
                        } else if !dead.contains(&pid) {
                            resume_q.push_back(Resume::Reply(pid, reply));
                        }
                    }
                    PendingKind::Fork { mut f } => {
                        if let SysReply::Proc(child) = reply {
                            let cf = f.take().expect("fork closure present");
                            if !dead.contains(&pid) {
                                resume_q.push_back(Resume::Reply(pid, SysReply::Proc(child)));
                            }
                            resume_q.push_back(Resume::StartFork(child, cf));
                        } else if !dead.contains(&pid) {
                            resume_q.push_back(Resume::Reply(pid, reply));
                        }
                    }
                }
            }

            if let Some(kind) = self.engine.shutdown_state() {
                break RunOutcome::Shutdown(kind);
            }
            if self.engine.now() > self.cfg.max_virtual_time {
                break RunOutcome::Hang("virtual time limit exceeded".into());
            }

            // Phase 3: resume exactly one process (or start a child).
            if let Some(r) = resume_q.pop_front() {
                if trace {
                    let what = match &r {
                        Resume::Reply(pid, rep) => format!("resume {} with {:?}", pid, rep),
                        Resume::Start(pid, _, _) => format!("start {}", pid),
                        Resume::StartFork(pid, _) => format!("start-fork {}", pid),
                    };
                    eprintln!("[host] {}", what);
                }
                match r {
                    Resume::Reply(pid, reply) => {
                        if dead.contains(&pid) {
                            continue;
                        }
                        if let Some(p) = procs.get(&pid) {
                            if p.input_tx.send(ProcInput::Reply(reply)).is_ok() {
                                running = Some(pid);
                            }
                        }
                    }
                    Resume::Start(pid, f, args) => {
                        let entry = self.start_process(pid, f, args, action_tx.clone());
                        procs.insert(pid, entry);
                        running = Some(pid);
                    }
                    Resume::StartFork(pid, f) => {
                        let entry = self.start_fork(pid, f, action_tx.clone());
                        procs.insert(pid, entry);
                        running = Some(pid);
                    }
                }
                continue;
            }

            // Phase 4: idle — everyone is blocked inside the OS. Advance
            // virtual time; bounded so a silent wedge becomes a hang.
            let live = procs.keys().filter(|p| !dead.contains(p)).count();
            if live == 0 {
                let init_code = exit_codes.get(&Pid::INIT.0).copied().unwrap_or(-1);
                break RunOutcome::Completed {
                    init_code,
                    exit_codes: exit_codes.clone(),
                };
            }
            let mut fired = 0u32;
            let mut progressed = false;
            while fired < self.cfg.max_idle_timer_fires {
                if !self.engine.fire_next_timer() {
                    break;
                }
                fired += 1;
                let replies = self.engine.pump();
                let kills = self.engine.take_kill_events();
                if !replies.is_empty() || !kills.is_empty() {
                    // Carry them back to the canonical handling path at the
                    // top of the loop (it knows about spawn/fork pendings).
                    carried_replies = replies;
                    carried_kills = kills;
                    progressed = true;
                    break;
                }
                if self.engine.shutdown_state().is_some() {
                    break;
                }
            }
            if let Some(kind) = self.engine.shutdown_state() {
                break RunOutcome::Shutdown(kind);
            }
            if !progressed {
                break RunOutcome::Hang(format!(
                    "{} live process(es) blocked with no resolvable event",
                    live
                ));
            }
        };

        // Tear down: release every parked thread and join.
        for (_, p) in procs.iter() {
            // Dropping the sender unblocks the thread's recv with Err.
            let _ = p.input_tx.send(ProcInput::Killed);
        }
        drop(action_tx);
        // Drain any stray actions so senders don't block (unbounded channel:
        // sends never block, but be tidy and consume).
        while action_rx.try_recv().is_ok() {}
        for (_, mut p) in procs.drain() {
            if let Some(h) = p.handle.take() {
                let _ = h.join();
            }
        }
        outcome
    }

    fn start_process(
        &self,
        pid: Pid,
        f: Arc<ProgramFn>,
        args: Vec<String>,
        action_tx: Sender<(Pid, ProcAction)>,
    ) -> ProcEntry {
        let (input_tx, input_rx) = channel::<ProcInput>();
        let registry = Arc::clone(&self.registry);
        let (retry_budget, retry_backoff_base, retry_backoff_max) = (
            self.cfg.ecrash_retry_budget,
            self.cfg.ecrash_backoff_base,
            self.cfg.ecrash_backoff_max,
        );
        let handle = std::thread::Builder::new()
            .name(format!("osiris-{}", pid))
            .spawn(move || {
                let mut sys = Sys {
                    pid,
                    args,
                    registry,
                    to_host: action_tx.clone(),
                    from_host: input_rx,
                    retry_ecrash: false,
                    retry_budget,
                    retry_backoff_base,
                    retry_backoff_max,
                };
                let result = catch_unwind(AssertUnwindSafe(|| f(&mut sys)));
                finish_thread(pid, result, &action_tx);
            })
            .expect("spawn process thread");
        ProcEntry {
            input_tx,
            handle: Some(handle),
            blocked_on: None,
        }
    }

    fn start_fork(&self, pid: Pid, f: ForkFn, action_tx: Sender<(Pid, ProcAction)>) -> ProcEntry {
        let (input_tx, input_rx) = channel::<ProcInput>();
        let registry = Arc::clone(&self.registry);
        let (retry_budget, retry_backoff_base, retry_backoff_max) = (
            self.cfg.ecrash_retry_budget,
            self.cfg.ecrash_backoff_base,
            self.cfg.ecrash_backoff_max,
        );
        let handle = std::thread::Builder::new()
            .name(format!("osiris-{}", pid))
            .spawn(move || {
                let mut sys = Sys {
                    pid,
                    args: Vec::new(),
                    registry,
                    to_host: action_tx.clone(),
                    from_host: input_rx,
                    retry_ecrash: false,
                    retry_budget,
                    retry_backoff_base,
                    retry_backoff_max,
                };
                let result = catch_unwind(AssertUnwindSafe(|| f(&mut sys)));
                finish_thread(pid, result, &action_tx);
            })
            .expect("spawn fork thread");
        ProcEntry {
            input_tx,
            handle: Some(handle),
            blocked_on: None,
        }
    }
}

fn finish_thread(
    pid: Pid,
    result: Result<i32, Box<dyn std::any::Any + Send>>,
    action_tx: &Sender<(Pid, ProcAction)>,
) {
    let code = match result {
        Ok(code) => code,
        Err(payload) => match payload.downcast::<ProcExit>() {
            Ok(pe) => match *pe {
                ProcExit::Exited(code) => code,
                ProcExit::Killed => return, // host already accounted for us
            },
            // A bug in the program itself: report a distinctive exit code.
            Err(_) => 101,
        },
    };
    let _ = action_tx.send((pid, ProcAction::Done(code)));
}
