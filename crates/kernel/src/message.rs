//! Messages, endpoints and the protocol trait.

use std::fmt;

use osiris_core::SeepMeta;

use crate::abi::Pid;

/// A message destination or source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// An OS component (server or driver), by registration index.
    Component(u8),
    /// A user process.
    Process(Pid),
    /// The kernel itself (timer notifications, crash notifications).
    Kernel,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Component(i) => write!(f, "comp{}", i),
            Endpoint::Process(p) => write!(f, "{}", p),
            Endpoint::Kernel => write!(f, "kernel"),
        }
    }
}

/// Unique message identifier (per kernel instance).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

/// Identifier correlating a user syscall submission with its reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SyscallId(pub u64);

/// Causal request-span context, minted by the kernel at every workload
/// entry point and propagated on every message/timer/continuation derived
/// from the request, so the final user reply can be attributed end to end.
///
/// `Copy` and fixed-size: carrying it on messages and return paths (which
/// live inside checkpointed continuations) never allocates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanInfo {
    /// Span id, monotone per kernel instance (deterministic across runs).
    pub id: u64,
    /// Virtual-clock cycle at which the span was opened.
    pub opened_at: u64,
    /// The kernel's recovery epoch when the span opened; a differing epoch
    /// at close means the request overlapped a crash capture or recovery.
    pub epoch_at_open: u64,
    /// Whether any telemetry sink (tracer or metrics registry) was enabled
    /// when the span was minted. Record sites downstream of the mint branch
    /// on this plain bool instead of re-consulting the handles' shared
    /// atomics, so a fully disabled configuration pays one predictable
    /// branch per hop — the same caching discipline `Heap::set_tracer`
    /// documents for the undo path. A toggle mid-flight takes effect for
    /// spans minted after it.
    pub record: bool,
}

/// The protocol spoken between components: the payload type of all
/// messages, carrying its own SEEP classification.
///
/// This is how channels become *Side Effect Engraved Passages*: the
/// side-effect metadata is a static property of each payload variant,
/// mirroring the paper's compile-time call-site annotation.
pub trait Protocol: fmt::Debug + Send + 'static {
    /// The SEEP metadata engraved on this payload.
    fn seep(&self) -> SeepMeta;

    /// The payload used for error virtualization: a reply telling the
    /// requester that the servicing component crashed (`E_CRASH`).
    fn crash_reply() -> Self;

    /// The payload the kernel sends to the Recovery Server when component
    /// `target` crashes.
    fn crash_notify(target: u8) -> Self;

    /// The payload the kernel sends to the Recovery Server to execute the
    /// kill-requester reconciliation (paper §VII): RS must arrange for
    /// process `pid` to be terminated through the normal kill path.
    fn kill_requester(pid: crate::abi::Pid) -> Self
    where
        Self: Sized,
    {
        // Systems without the extension simply reuse the crash notification
        // channel as a no-op; the default keeps retrofits source-compatible.
        let _ = pid;
        Self::crash_notify(u8::MAX)
    }

    /// If this payload is the final reply to a user syscall, the reply to
    /// deliver to the process; `None` for inter-component payloads.
    fn as_user_reply(&self) -> Option<crate::abi::SysReply>;

    /// Short stable label for tracing and profiling.
    fn label(&self) -> &'static str;

    /// Content digest used for reply-integrity verification: the kernel
    /// stamps `digest()` on every reply at send time and re-verifies it at
    /// delivery when the watchdog is enabled, so a reply whose payload was
    /// corrupted in flight is rejected and its sender treated as crashed.
    /// The default (constant 0) opts a protocol out of the defense while
    /// staying source-compatible.
    fn digest(&self) -> u64 {
        0
    }
}

/// A message in flight.
#[derive(Clone, Debug)]
pub struct Message<P> {
    /// Unique id (used as `reply_to` correlation key by repliers).
    pub id: MsgId,
    /// Sender.
    pub src: Endpoint,
    /// Receiver.
    pub dst: Endpoint,
    /// For replies: the id of the request being answered.
    pub reply_to: Option<MsgId>,
    /// For messages born from a user syscall: the syscall correlation id,
    /// propagated onto the final reply to the user.
    pub user_tag: Option<SyscallId>,
    /// SEEP metadata (cached from the payload at send time).
    pub seep: SeepMeta,
    /// The causal request span this message belongs to, if any.
    pub span: Option<SpanInfo>,
    /// Integrity digest of the payload ([`Protocol::digest`]), stamped at
    /// send time. Verified on reply delivery when the watchdog is enabled;
    /// a mismatch means the payload was corrupted after the sender sealed
    /// it, and the reply is rejected.
    pub integrity: u64,
    /// The payload.
    pub payload: P,
}

/// The *return path* a server must remember to answer a request later
/// (stored inside continuations in the server's checkpointed heap).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReturnPath {
    /// Who asked.
    pub ep: Endpoint,
    /// Their request message id.
    pub msg_id: MsgId,
    /// The user syscall tag, if the request originated from a process.
    pub user_tag: Option<SyscallId>,
    /// The causal span of the request, restored onto the eventual reply.
    pub span: Option<SpanInfo>,
}

impl<P> Message<P> {
    /// The return path needed to reply to this message later.
    pub fn return_path(&self) -> ReturnPath {
        ReturnPath {
            ep: self.src,
            msg_id: self.id,
            user_tag: self.user_tag,
            span: self.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osiris_core::{SeepClass, SeepMeta};

    #[derive(Debug)]
    struct P;
    impl Protocol for P {
        fn seep(&self) -> SeepMeta {
            SeepMeta::request(SeepClass::StateModifying)
        }
        fn crash_reply() -> Self {
            P
        }
        fn crash_notify(_target: u8) -> Self {
            P
        }

        fn as_user_reply(&self) -> Option<crate::abi::SysReply> {
            None
        }
        fn label(&self) -> &'static str {
            "p"
        }
    }

    #[test]
    fn return_path_captures_requester() {
        let m = Message {
            id: MsgId(7),
            src: Endpoint::Process(Pid(3)),
            dst: Endpoint::Component(0),
            reply_to: None,
            user_tag: Some(SyscallId(9)),
            seep: P.seep(),
            span: Some(SpanInfo {
                id: 11,
                opened_at: 4,
                epoch_at_open: 0,
                record: true,
            }),
            integrity: 0,
            payload: P,
        };
        let rp = m.return_path();
        assert_eq!(rp.ep, Endpoint::Process(Pid(3)));
        assert_eq!(rp.msg_id, MsgId(7));
        assert_eq!(rp.user_tag, Some(SyscallId(9)));
        assert_eq!(rp.span.map(|s| s.id), Some(11));
    }

    #[test]
    fn endpoint_ordering_is_stable() {
        assert!(Endpoint::Component(0) < Endpoint::Component(1));
        assert!(Endpoint::Component(9) < Endpoint::Process(Pid(0)));
    }
}
