//! The microkernel: message passing, scheduling, crash detection and the
//! mechanics of recovery.
//!
//! This is the trusted substrate at the bottom of the Reliable Computing
//! Base (paper §V-A item 5). It delivers messages between fault-isolated
//! components, opens and completes recovery windows around handler
//! invocations, catches component crashes (panics), notifies the Recovery
//! Server, and executes the restart / rollback / reconciliation phases the
//! RS decides on (paper §IV-C).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use osiris_axiom::{
    bisect, AxiomConfig, AxiomError, AxiomEvent, AxiomLog, AxiomRecord, CompStatusCode,
    ControlState, Divergence, VerdictCode,
};
use osiris_checkpoint::{ChunkStore, Heap, HeapImage, HeapStats, RestoreStats};
use osiris_core::{
    decide_recovery, fallback_action, CrashContext, MessageKind, RecoveryAction, RecoveryDecision,
    RecoveryPolicy, RecoveryWindow,
};
use osiris_metrics::{
    Counter, Gauge, Hist, MetricsConfig, MetricsHandle, MetricsSnapshot, TimeseriesConfig,
    TimeseriesSampler, TimeseriesState,
};
use osiris_trace::{TraceConfig, TraceEvent, TraceHandle, TracerState, KERNEL_COMP};

use crate::abi::{Errno, Pid, SysReply};
use crate::clock::{CostModel, VirtualClock};
use crate::component::{
    Ctx, FaultEffect, FaultHook, InjectedHang, IntentPhase, NoFaults, PrivOp, Probe, ReplyTamper,
    Server, SiteKind,
};
use crate::message::{Endpoint, Message, MsgId, Protocol, SpanInfo, SyscallId};
use crate::metrics::{ComponentReport, KernelMetrics, ShutdownKind};

/// Whether (and how) checkpointing instrumentation is active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instrumentation {
    /// No write logging at all: the uninstrumented baseline.
    Off,
    /// Logging only while a recovery window is open — the paper's
    /// function-cloning optimization (default).
    WindowGated,
    /// Logging unconditionally — the paper's unoptimized configuration.
    Always,
}

/// Fail-silent fault tolerance: the virtual-time watchdog.
///
/// When enabled, the kernel arms a deadline on every *bounded* request
/// delivered to a component (derived from the request's SEEP metadata:
/// state-modifying requests get the longer budget, intrinsically blocking
/// passages are never armed). An expired deadline starts a heartbeat-probe
/// round that distinguishes *hung* (no progress — the component is declared
/// dead and recovered through the Recovery Server's escalation ladder) from
/// *slow* (progress but late — the reply is accepted and only a `Slow`
/// verdict is sealed). Crash replies to armed requests are intercepted for
/// transparent retry with deterministic exponential backoff and seeded
/// jitter; reply payloads are integrity-checked against the digest stamped
/// at send time, and a corrupt reply is treated as a crash of its sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Master switch. Disabled by default: every hot path below reduces to
    /// one branch, and the kernel behaves exactly as without a watchdog.
    pub enabled: bool,
    /// Deadline armed on non-state-modifying requests, in virtual cycles.
    /// Sized above the worst fault-free request chain in the default cost
    /// model (a ~50-hop disk-bound chain costs ≈ 1.25M cycles).
    pub deadline: u64,
    /// Deadline armed on state-modifying requests (longer: such requests
    /// fan out to other servers and the disk).
    pub deadline_state_modifying: u64,
    /// Heartbeat-probe period after a deadline expires: how long the
    /// watchdog waits between progress checks before issuing a verdict.
    pub probe_period: u64,
    /// Probe rounds granted to a component that keeps making progress
    /// before the watchdog gives up watching (verdict `Slow`).
    pub max_probes: u32,
    /// Transparent retries granted per request (attempt indices
    /// `0..max_retries` may be re-driven; the next failure surfaces).
    pub max_retries: u32,
    /// Base backoff before the first retry; attempt `n` waits
    /// `backoff_base << n` plus jitter.
    pub backoff_base: u64,
    /// Seed for the deterministic retry jitter (FNV-folded with the message
    /// id and attempt, so two same-seed runs schedule identical retries).
    pub jitter_seed: u64,
    /// Preallocated deadline slots. Requests arriving while all slots are
    /// armed simply go unwatched (the RS heartbeat remains the backstop);
    /// the armed-deadline hot path never allocates.
    pub capacity: usize,
}

impl WatchdogConfig {
    /// The watchdog enabled with default deadlines, probing and backoff.
    pub fn on() -> Self {
        WatchdogConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: false,
            deadline: 1_500_000,
            deadline_state_modifying: 3_000_000,
            probe_period: 2_000_000,
            max_probes: 8,
            max_retries: 2,
            backoff_base: 250_000,
            jitter_seed: 0x0517_C0DE,
            capacity: 64,
        }
    }
}

/// Kernel configuration.
pub struct KernelConfig {
    /// The system-wide recovery policy.
    pub policy: Box<dyn RecoveryPolicy>,
    /// Instrumentation mode.
    pub instrumentation: Instrumentation,
    /// The cycle-cost model.
    pub cost: CostModel,
    /// Shutdown grace: when a controlled shutdown is decided, keep serving
    /// messages for up to this many more deliveries so applications can
    /// save their state before the system stops (paper §VII, the
    /// Otherworld-style extension). `0` shuts down immediately.
    pub shutdown_grace: u32,
    /// Flight-recorder configuration. Disabled by default; setting
    /// `trace.verbose` additionally mirrors every recorded event to stderr
    /// (the replacement for the old `OSIRIS_KERNEL_TRACE` prints, which
    /// remain honored as an env-var override).
    pub trace: TraceConfig,
    /// Metrics-registry configuration. Enabled by default: the kernel's own
    /// accounting ([`KernelMetrics`], [`ComponentReport`]) reads from the
    /// registry, so disabling it also zeroes those views.
    pub metrics: MetricsConfig,
    /// Axiom-log configuration. The kernel *always* folds control-plane
    /// events into its live [`ControlState`] (that fold is the control
    /// plane — the recovery intent log is a view over it); this setting
    /// only gates whether the events are additionally retained and
    /// digest-chained for replay/bisection.
    pub axiom: AxiomConfig,
    /// Virtual-time telemetry sampler configuration. Disabled by default;
    /// when enabled the kernel snapshots the span-latency, crash and
    /// recovery series every Δ virtual cycles (see
    /// `osiris_metrics::timeseries`).
    pub timeseries: TimeseriesConfig,
    /// Virtual-time watchdog configuration (fail-silent fault tolerance).
    pub watchdog: WatchdogConfig,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            policy: Box::new(osiris_core::Enhanced),
            instrumentation: Instrumentation::WindowGated,
            cost: CostModel::default(),
            shutdown_grace: 0,
            trace: TraceConfig::default(),
            metrics: MetricsConfig::default(),
            axiom: AxiomConfig::default(),
            timeseries: TimeseriesConfig::default(),
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl std::fmt::Debug for KernelConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelConfig")
            .field("policy", &self.policy.name())
            .field("instrumentation", &self.instrumentation)
            .field("trace", &self.trace.enabled)
            .finish()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CompStatus {
    Alive,
    Hung,
    Crashed,
    /// Benched by the escalation ladder: never scheduled again; requests to
    /// it are bounced with an immediate crash reply instead of delivered.
    Quarantined,
}

/// Crash-time facts frozen until recovery executes.
struct PendingCrash<P> {
    msg: Message<P>,
    window_open: bool,
    reply_possible: bool,
    scoped_sends: bool,
    /// The crash happened while another component's recovery was in flight
    /// (only the RS can run then, so this means the RS crashed mid-conduct).
    in_recovery_code: bool,
    /// The component was quiescent when the watchdog declared it dead (its
    /// handler had completed and its transaction committed; only the reply
    /// was lost or tampered with). The heap is consistent, so a policy
    /// verdict of "shut down" degrades to a keep-state restart instead.
    quiescent: bool,
}

/// Detection state of one armed watchdog deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WdState {
    /// Deadline armed, not yet expired.
    Armed,
    /// Deadline expired; heartbeat-probing the component until `until`.
    Probing {
        /// Virtual time of the next progress check.
        until: u64,
        /// Probe rounds already spent.
        probes: u32,
        /// The component's message counter at the last check — the
        /// progress signal the heartbeat protocol compares against.
        progress_at: u64,
    },
    /// Verdict issued; the slot only waits for the recovery machinery's
    /// crash reply so the retry interception can find the arm metadata.
    Doomed,
    /// The reply to this request failed its integrity check; reconciliation
    /// (retry or crash reply, plus sender restart) is pending at the end of
    /// the current delivery.
    Rejected,
}

///// One preallocated watchdog slot: the deadline armed for an in-flight
/// bounded request. `msg` holds the request itself once its handler
/// completed without producing a reply (captured by move, never cloned), so
/// a lost or corrupt reply can be re-driven transparently.
struct WdSlot<P> {
    msg_id: u64,
    /// Endpoint the request was delivered to (the watched component).
    dst: u8,
    armed_at: u64,
    deadline: u64,
    /// Retry attempts already spent on this request.
    attempt: u8,
    /// Kernel recovery epoch at arm time: a state-modifying request may
    /// only be retried if the epoch advanced since (its partial effects
    /// were rolled back or restarted away).
    epoch_at_arm: u64,
    state: WdState,
    msg: Option<Message<P>>,
}

/// How many times an in-flight recovery intent is re-driven through the RS
/// before the kernel completes it directly.
///
/// The intent log itself is no longer a separate record: it is the set of
/// active [`osiris_axiom::IntentSlot`]s in the kernel's [`ControlState`] —
/// a pure view over the axiom tail (`IntentRecorded` / `IntentReplayed` /
/// `IntentResolved` events), refined by the RS via [`PrivOp::RecordIntent`]
/// as the conduct progresses.
const MAX_INTENT_REPLAYS: u32 = 2;

struct Comp<P: Protocol> {
    name: &'static str,
    server: Box<dyn Server<P>>,
    pristine_server: Option<Box<dyn Server<P>>>,
    heap: Heap,
    pristine_image: Option<HeapImage>,
    window: RecoveryWindow,
    inbox: VecDeque<Message<P>>,
    status: CompStatus,
    crash_info: Option<PendingCrash<P>>,
    privileged: bool,
    stats: CompStats,
}

/// Per-component registry series. Live counters/histograms are written at
/// event time; the gauges and `*_total` mirrors of the checkpoint heap's
/// hot-path tallies are refreshed by [`Kernel::sync_registry`].
struct CompStats {
    cycles: Counter,
    messages: Counter,
    crashes: Counter,
    recoveries: Counter,
    /// Virtual cycles charged per recovery of this component.
    recovery_hist: Hist,
    /// In-window cycles per completed request.
    window_hist: Hist,
    /// Undo bytes appended per completed request window.
    undo_hist: Hist,
    // Mirrored at sync points (not hot-path writes):
    heap_bytes: Gauge,
    clone_bytes: Gauge,
    clone_dedup_bytes: Gauge,
    undo_window_peak_bytes: Gauge,
    writes: Counter,
    undo_appends: Counter,
    coalesced_writes: Counter,
    window_opens: Counter,
    window_rollbacks: Counter,
    // Escalation-ladder series (written by the kernel on behalf of the
    // Recovery Server's ladder decisions):
    quarantines: Counter,
    quarantine_refusals: Counter,
    escalation_restarts_window: Gauge,
    escalation_backoff_arms: Counter,
    escalation_budget_exhausted: Counter,
}

impl CompStats {
    fn register(m: &MetricsHandle, name: &str, endpoint: u8) -> CompStats {
        let ep = endpoint.to_string();
        let l: [(&str, &str); 2] = [("component", name), ("endpoint", &ep)];
        CompStats {
            cycles: m.counter(
                "osiris_comp_cycles_total",
                "Virtual cycles spent running this component's handlers",
                &l,
            ),
            messages: m.counter("osiris_comp_messages_total", "Messages handled", &l),
            crashes: m.counter(
                "osiris_comp_crashes_total",
                "Fail-stop crashes observed in this component",
                &l,
            ),
            recoveries: m.counter(
                "osiris_comp_recoveries_total",
                "Times this component was recovered",
                &l,
            ),
            recovery_hist: m.hist(
                "osiris_comp_recovery_latency_cycles",
                "Virtual cycles charged per recovery",
                &l,
            ),
            window_hist: m.hist(
                "osiris_comp_window_cycles",
                "In-window cycles per completed request",
                &l,
            ),
            undo_hist: m.hist(
                "osiris_comp_undo_window_bytes",
                "Undo bytes appended per completed request window",
                &l,
            ),
            heap_bytes: m.gauge(
                "osiris_comp_heap_bytes",
                "Current resident heap size in bytes",
                &l,
            ),
            clone_bytes: m.gauge(
                "osiris_comp_clone_bytes",
                "Size of the pristine clone image kept for recovery",
                &l,
            ),
            clone_dedup_bytes: m.gauge(
                "osiris_comp_clone_dedup_bytes",
                "Deduplicated store bytes attributed to this component's clone image",
                &l,
            ),
            undo_window_peak_bytes: m.gauge(
                "osiris_comp_undo_window_peak_bytes",
                "Peak undo-log size sampled at window close",
                &l,
            ),
            writes: m.counter(
                "osiris_comp_writes_total",
                "Logical heap writes (logged and unlogged)",
                &l,
            ),
            undo_appends: m.counter(
                "osiris_comp_undo_appends_total",
                "Writes that appended an undo record",
                &l,
            ),
            coalesced_writes: m.counter(
                "osiris_comp_coalesced_writes_total",
                "Logged writes elided by undo-journal coalescing",
                &l,
            ),
            window_opens: m.counter(
                "osiris_comp_window_opens_total",
                "Recovery windows opened",
                &l,
            ),
            window_rollbacks: m.counter(
                "osiris_comp_window_rollbacks_total",
                "Recovery windows rolled back",
                &l,
            ),
            quarantines: m.counter(
                "osiris_quarantine_total",
                "Times this component was quarantined by the escalation ladder",
                &l,
            ),
            quarantine_refusals: m.counter(
                "osiris_quarantine_refusals_total",
                "Requests bounced with a crash reply while quarantined",
                &l,
            ),
            escalation_restarts_window: m.gauge(
                "osiris_escalation_restarts_window",
                "Restarts of this component inside the current sliding window",
                &l,
            ),
            escalation_backoff_arms: m.counter(
                "osiris_escalation_backoff_arms_total",
                "Restart backoffs armed for this component",
                &l,
            ),
            escalation_budget_exhausted: m.counter(
                "osiris_escalation_budget_exhausted_total",
                "Times this component exhausted its restart budget",
                &l,
            ),
        }
    }
}

/// Kernel-wide registry series.
struct KernelCounters {
    ipc_delivered: Counter,
    syscalls: Counter,
    timers_fired: Counter,
    hangs: Counter,
    recovered_rollback: Counter,
    recovered_fresh: Counter,
    recovered_naive: Counter,
    recovered_quiescent: Counter,
    controlled_shutdowns: Counter,
    recovery_cycles: Counter,
    fb_rollback_fresh: Counter,
    fb_fresh_shutdown: Counter,
    fb_reconcile_shutdown: Counter,
    fb_crash_fresh: Counter,
    intent_replays: Counter,
    intent_completed: Counter,
    journal_ok: Counter,
    journal_corrupt: Counter,
    image_ok: Counter,
    image_corrupt: Counter,
    // Content-addressed clone-pool series:
    cas_chunks: Gauge,
    cas_bytes: Gauge,
    cas_dedup_hits: Counter,
    restart_chunks_clean: Counter,
    restart_chunks_dirty: Counter,
    pool_refreshed: Counter,
    pool_refresh_skipped: Counter,
    // Axiom-log series:
    axiom_events: Counter,
    axiom_bytes: Gauge,
    axiom_chain_ok: Counter,
    axiom_chain_corrupt: Counter,
    axiom_replay_divergence: Counter,
    // Causal request-span series (end-to-end latency attribution, split by
    // whether the request overlapped a crash capture or recovery):
    spans_started: Counter,
    spans_completed_none: Counter,
    spans_completed_recovery: Counter,
    span_latency_none: Hist,
    span_latency_recovery: Hist,
    span_hops: Counter,
    // Virtual-time watchdog series (fail-silent fault tolerance):
    wd_armed_total: Counter,
    wd_expired: Counter,
    wd_probes: Counter,
    wd_verdict_hung: Counter,
    wd_verdict_slow: Counter,
    wd_verdict_reply_lost: Counter,
    wd_verdict_corrupt: Counter,
    wd_replies_rejected: Counter,
    wd_detect_latency: Hist,
    retry_granted: Counter,
    retry_denied: Counter,
    retry_exhausted: Counter,
}

impl KernelCounters {
    fn register(m: &MetricsHandle) -> KernelCounters {
        let recoveries = |action: &str| {
            m.counter(
                "osiris_kernel_recoveries_total",
                "Recoveries executed, by action",
                &[("action", action)],
            )
        };
        let fallback = |from: &str, to: &str| {
            m.counter(
                "osiris_recovery_fallback_total",
                "Recovery phases degraded to the next rung of the fallback chain",
                &[("from", from), ("to", to)],
            )
        };
        let integrity = |kind: &str, result: &str| {
            m.counter(
                "osiris_journal_integrity_checks_total",
                "Undo-journal and heap-image integrity checks before recovery",
                &[("kind", kind), ("result", result)],
            )
        };
        let spans_completed = |overlap: &str| {
            m.counter(
                "osiris_span_completed_total",
                "Causal request spans closed, by recovery overlap",
                &[("overlap", overlap)],
            )
        };
        let span_latency = |overlap: &str| {
            m.hist(
                "osiris_span_latency_cycles",
                "End-to-end virtual cycles per request span, by recovery overlap",
                &[("overlap", overlap)],
            )
        };
        let verdicts = |verdict: &str| {
            m.counter(
                "osiris_watchdog_verdicts_total",
                "Watchdog verdicts issued, by kind",
                &[("verdict", verdict)],
            )
        };
        let retries = |result: &str| {
            m.counter(
                "osiris_retry_decisions_total",
                "Transparent-retry decisions on failed requests, by result",
                &[("result", result)],
            )
        };
        KernelCounters {
            ipc_delivered: m.counter(
                "osiris_kernel_ipc_delivered_total",
                "Messages delivered between endpoints",
                &[],
            ),
            syscalls: m.counter(
                "osiris_kernel_syscalls_total",
                "User syscalls submitted",
                &[],
            ),
            timers_fired: m.counter(
                "osiris_kernel_timers_fired_total",
                "Timer events fired",
                &[],
            ),
            hangs: m.counter("osiris_kernel_hangs_total", "Components detected hung", &[]),
            recovered_rollback: recoveries("rollback"),
            recovered_fresh: recoveries("fresh"),
            recovered_naive: recoveries("naive"),
            recovered_quiescent: recoveries("quiescent"),
            controlled_shutdowns: m.counter(
                "osiris_kernel_controlled_shutdowns_total",
                "Controlled shutdowns performed",
                &[],
            ),
            recovery_cycles: m.counter(
                "osiris_kernel_recovery_cycles_total",
                "Virtual cycles spent executing recovery phases",
                &[],
            ),
            fb_rollback_fresh: fallback("rollback", "fresh"),
            fb_fresh_shutdown: fallback("fresh", "shutdown"),
            fb_reconcile_shutdown: fallback("reconcile", "shutdown"),
            fb_crash_fresh: fallback("crash", "fresh"),
            intent_replays: m.counter(
                "osiris_recovery_fallback_intent_replays_total",
                "In-flight recovery intents re-driven through a restarted RS",
                &[],
            ),
            intent_completed: m.counter(
                "osiris_recovery_fallback_intent_completed_total",
                "In-flight recovery intents completed by the kernel directly",
                &[],
            ),
            journal_ok: integrity("journal", "ok"),
            journal_corrupt: integrity("journal", "corrupt"),
            image_ok: integrity("image", "ok"),
            image_corrupt: integrity("image", "corrupt"),
            cas_chunks: m.gauge(
                "osiris_cas_chunks",
                "Chunks resident in the content-addressed clone-pool store",
                &[],
            ),
            cas_bytes: m.gauge(
                "osiris_cas_bytes",
                "Deduplicated resident bytes in the content-addressed store",
                &[],
            ),
            cas_dedup_hits: m.counter(
                "osiris_cas_dedup_hits_total",
                "Chunk insertions satisfied by an already-resident chunk",
                &[],
            ),
            restart_chunks_clean: m.counter(
                "osiris_restart_chunks_total",
                "Chunks considered during copy-on-write restores, by kind",
                &[("kind", "clean")],
            ),
            restart_chunks_dirty: m.counter(
                "osiris_restart_chunks_total",
                "Chunks considered during copy-on-write restores, by kind",
                &[("kind", "dirty")],
            ),
            pool_refreshed: m.counter(
                "osiris_cas_pool_refresh_total",
                "Clone-pool image refreshes requested by the RS, by result",
                &[("result", "refreshed")],
            ),
            pool_refresh_skipped: m.counter(
                "osiris_cas_pool_refresh_total",
                "Clone-pool image refreshes requested by the RS, by result",
                &[("result", "skipped")],
            ),
            axiom_events: m.counter(
                "osiris_axiom_events_total",
                "Control-plane events folded into the axiom control state",
                &[],
            ),
            axiom_bytes: m.gauge(
                "osiris_axiom_bytes",
                "Serialized size of the recorded axiom log",
                &[],
            ),
            axiom_chain_ok: m.counter(
                "osiris_axiom_chain_verifications_total",
                "Axiom digest-chain verifications, by result",
                &[("result", "ok")],
            ),
            axiom_chain_corrupt: m.counter(
                "osiris_axiom_chain_verifications_total",
                "Axiom digest-chain verifications, by result",
                &[("result", "corrupt")],
            ),
            axiom_replay_divergence: m.counter(
                "osiris_axiom_replay_divergence_total",
                "Replay comparisons that found a divergence from the recorded axiom",
                &[],
            ),
            spans_started: m.counter(
                "osiris_span_started_total",
                "Causal request spans minted at workload entry points",
                &[],
            ),
            spans_completed_none: spans_completed("none"),
            spans_completed_recovery: spans_completed("recovery"),
            span_latency_none: span_latency("none"),
            span_latency_recovery: span_latency("recovery"),
            span_hops: m.counter(
                "osiris_span_hops_total",
                "Span-carrying message deliveries (causal hops)",
                &[],
            ),
            wd_armed_total: m.counter(
                "osiris_watchdog_armed_total",
                "Watchdog deadlines armed on bounded requests",
                &[],
            ),
            wd_expired: m.counter(
                "osiris_watchdog_deadline_expired_total",
                "Armed deadlines that expired before a reply arrived",
                &[],
            ),
            wd_probes: m.counter(
                "osiris_watchdog_probes_total",
                "Heartbeat progress probes issued after a deadline expiry",
                &[],
            ),
            wd_verdict_hung: verdicts("hung"),
            wd_verdict_slow: verdicts("slow"),
            wd_verdict_reply_lost: verdicts("reply_lost"),
            wd_verdict_corrupt: verdicts("corrupt_reply"),
            wd_replies_rejected: m.counter(
                "osiris_watchdog_replies_rejected_total",
                "Replies rejected because their payload digest mismatched",
                &[],
            ),
            wd_detect_latency: m.hist(
                "osiris_watchdog_detection_latency_cycles",
                "Virtual cycles from arming a deadline to the hang verdict",
                &[],
            ),
            retry_granted: retries("granted"),
            retry_denied: retries("denied"),
            retry_exhausted: m.counter(
                "osiris_retry_exhausted_total",
                "Requests whose transparent retry budget ran out",
                &[],
            ),
        }
    }
}

/// The deterministic microkernel.
///
/// Generic over the inter-component protocol `P`; the `osiris-servers` crate
/// instantiates it with the full OS protocol.
pub struct Kernel<P: Protocol> {
    cfg: KernelConfig,
    clock: VirtualClock,
    comps: Vec<Comp<P>>,
    timers: BTreeMap<(u64, u64), (u8, Option<SpanInfo>, P)>,
    timer_seq: u64,
    next_msg_id: u64,
    /// Monotone span-id source; deterministic, reset at the boot barrier.
    next_span_id: u64,
    /// Incremented at every crash/hang capture and completed recovery: a
    /// span whose open-time epoch differs at close crossed a recovery.
    recovery_epoch: u64,
    recovering: Option<u8>,
    shutdown: Option<ShutdownKind>,
    shutdown_pending: Option<(ShutdownKind, u32)>,
    user_replies: Vec<(SyscallId, Pid, SysReply)>,
    kill_events: Vec<Pid>,
    hook: Box<dyn FaultHook>,
    rs_ep: Option<u8>,
    /// The authoritative control-plane history. Only events sealed here (or
    /// folded into `control` when retention is disabled) are real.
    axiom: AxiomLog,
    /// Live control state: the running fold of every axiom event, and the
    /// authority the kernel consults for recovery intents.
    control: ControlState,
    /// The content-addressed chunk store backing every component's pristine
    /// clone image: identical chunks across components are stored once and
    /// refcounted, so the spare-copy pool's resident cost is deduplicated.
    cas: ChunkStore,
    metrics: MetricsHandle,
    counters: KernelCounters,
    /// Virtual-time telemetry: Δ-cycle snapshots of the latency/crash/
    /// recovery series, exported as `timeseries.json` and Chrome counter
    /// lanes.
    sampler: TimeseriesSampler,
    /// Preallocated watchdog deadline slots (fixed at
    /// [`WatchdogConfig::capacity`]; the armed hot path never allocates).
    wd_slots: Vec<Option<WdSlot<P>>>,
    /// Number of occupied watchdog slots — the one-branch fast-path guard.
    wd_armed: usize,
    /// Requests awaiting transparent re-delivery after a granted retry,
    /// keyed by (virtual due time, schedule sequence).
    retry_wait: BTreeMap<(u64, u64), (u8, Message<P>)>,
    retry_seq: u64,
    rr_cursor: usize,
    initialized: bool,
    tracer: TraceHandle,
}

impl<P: Protocol> std::fmt::Debug for Kernel<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("components", &self.comps.len())
            .field("now", &self.clock.now())
            .field("shutdown", &self.shutdown)
            .finish()
    }
}

impl<P: Protocol> Kernel<P> {
    /// Creates a kernel with the given configuration.
    pub fn new(cfg: KernelConfig) -> Self {
        let mut tcfg = cfg.trace.clone();
        if std::env::var_os("OSIRIS_KERNEL_TRACE").is_some_and(|v| v == "1") {
            tcfg.verbose = true;
        }
        let tracer = TraceHandle::new(tcfg);
        let metrics = MetricsHandle::new(cfg.metrics);
        let counters = KernelCounters::register(&metrics);
        let axiom = AxiomLog::new(cfg.axiom);
        let mut sampler = TimeseriesSampler::new(cfg.timeseries);
        if cfg.timeseries.enabled {
            // The families worth watching over time: end-to-end request
            // latency split by recovery overlap, plus the crash/recovery
            // activity that explains its excursions.
            sampler.track_hist(
                "osiris_span_latency_cycles{overlap=\"none\"}",
                counters.span_latency_none.clone(),
            );
            sampler.track_hist(
                "osiris_span_latency_cycles{overlap=\"recovery\"}",
                counters.span_latency_recovery.clone(),
            );
            sampler.track_counter("osiris_span_started_total", counters.spans_started.clone());
            sampler.track_counter(
                "osiris_span_completed_total{overlap=\"none\"}",
                counters.spans_completed_none.clone(),
            );
            sampler.track_counter(
                "osiris_span_completed_total{overlap=\"recovery\"}",
                counters.spans_completed_recovery.clone(),
            );
            sampler.track_counter(
                "osiris_kernel_recovery_cycles_total",
                counters.recovery_cycles.clone(),
            );
            sampler.track_counter("osiris_kernel_hangs_total", counters.hangs.clone());
            sampler.track_counter("osiris_axiom_events_total", counters.axiom_events.clone());
        }
        let wd_slots = (0..cfg.watchdog.capacity).map(|_| None).collect();
        Kernel {
            cfg,
            clock: VirtualClock::new(),
            comps: Vec::new(),
            timers: BTreeMap::new(),
            timer_seq: 0,
            next_msg_id: 0,
            next_span_id: 0,
            recovery_epoch: 0,
            recovering: None,
            shutdown: None,
            shutdown_pending: None,
            user_replies: Vec::new(),
            kill_events: Vec::new(),
            hook: Box::new(NoFaults),
            rs_ep: None,
            axiom,
            control: ControlState::new(),
            cas: ChunkStore::new(),
            metrics,
            counters,
            sampler,
            wd_slots,
            wd_armed: 0,
            retry_wait: BTreeMap::new(),
            retry_seq: 0,
            rr_cursor: 0,
            initialized: false,
            tracer,
        }
    }

    /// The flight recorder attached to this kernel.
    pub fn tracer(&self) -> &TraceHandle {
        &self.tracer
    }

    /// Component names indexed by endpoint, for trace rendering.
    pub fn trace_names(&self) -> Vec<String> {
        self.comps.iter().map(|c| c.name.to_string()).collect()
    }

    /// Renders the recorded event stream as deterministic text (one line
    /// per event) — the artifact diffed by the trace-determinism CI gate.
    pub fn trace_text(&self) -> String {
        osiris_trace::render_text(&self.tracer.snapshot(), &self.trace_names())
    }

    /// Exports the recorded event stream as a Chrome `trace_event` JSON
    /// document (loadable in `chrome://tracing` / Perfetto). When axiom
    /// retention is enabled the control-plane log renders as an extra
    /// instant-event lane.
    pub fn chrome_trace(&self) -> osiris_trace::Json {
        let mut doc = osiris_trace::chrome::chrome_trace_with_axiom(
            &self.tracer.snapshot(),
            &self.trace_names(),
            self.axiom.records(),
        );
        // Telemetry samples render as counter lanes under the main track.
        self.sampler.append_chrome_counters(&mut doc);
        doc
    }

    /// The virtual-time telemetry sampler (empty unless
    /// [`KernelConfig::timeseries`] enabled sampling).
    pub fn timeseries(&self) -> &TimeseriesSampler {
        &self.sampler
    }

    /// Takes one final telemetry sample at the current virtual time, so the
    /// run-end state always appears in the export. Call before rendering
    /// [`Kernel::timeseries`].
    pub fn flush_timeseries(&mut self) {
        self.sampler.sample(self.clock.now());
    }

    /// The post-mortem black box: the last configured number of events per
    /// component, or `None` when tracing is disabled.
    pub fn blackbox(&self) -> Option<String> {
        self.tracer.blackbox(&self.trace_names())
    }

    /// Dumps the black box to stderr (crash post-mortem).
    fn dump_blackbox(&self, why: &str) {
        if let Some(dump) = self.blackbox() {
            eprintln!("[kernel t={}] {}:\n{}", self.clock.now(), why, dump);
        }
    }

    /// Seals `event` into the axiom: folds it into the live control state
    /// (always — the fold *is* the control plane) and appends it to the
    /// digest-chained log (only when recording is enabled).
    fn axiom_emit(&mut self, event: AxiomEvent) {
        Self::axiom_note(
            &mut self.control,
            &mut self.axiom,
            &self.counters,
            self.clock.now(),
            event,
        );
    }

    /// Field-level variant of [`Kernel::axiom_emit`] for call sites that
    /// already hold disjoint borrows of the kernel's fields.
    fn axiom_note(
        control: &mut ControlState,
        axiom: &mut AxiomLog,
        counters: &KernelCounters,
        now: u64,
        event: AxiomEvent,
    ) {
        control.apply(now, &event);
        axiom.append(now, event);
        counters.axiom_events.inc();
    }

    /// The authoritative control-plane log.
    pub fn axiom(&self) -> &AxiomLog {
        &self.axiom
    }

    /// Serializes the axiom to its crash-consistent byte image.
    pub fn axiom_bytes(&self) -> Vec<u8> {
        self.axiom.to_bytes()
    }

    /// The live control state: the running reduction of the axiom.
    pub fn control_state(&self) -> &ControlState {
        &self.control
    }

    /// Per-component statuses in axiom vocabulary, for cross-checking the
    /// control-state reduction against the kernel's own bookkeeping.
    pub fn status_codes(&self) -> Vec<CompStatusCode> {
        self.comps
            .iter()
            .map(|c| match c.status {
                CompStatus::Alive => CompStatusCode::Alive,
                CompStatus::Hung => CompStatusCode::Hung,
                CompStatus::Crashed => CompStatusCode::Crashed,
                CompStatus::Quarantined => CompStatusCode::Quarantined,
            })
            .collect()
    }

    /// Verifies the recorded axiom's digest chain end to end, counting the
    /// check in `osiris_axiom_chain_verifications_total`.
    pub fn verify_axiom(&self) -> Result<(), AxiomError> {
        match self.axiom.verify() {
            Ok(()) => {
                self.counters.axiom_chain_ok.inc();
                Ok(())
            }
            Err(e) => {
                self.counters.axiom_chain_corrupt.inc();
                Err(e)
            }
        }
    }

    /// Bisects this kernel's axiom against a previously `recorded` one and
    /// returns the first diverging event, counting any divergence in
    /// `osiris_axiom_replay_divergence_total`. `None` means this run
    /// re-derived the recorded history exactly.
    pub fn check_replay_divergence(&self, recorded: &[AxiomRecord]) -> Option<Divergence> {
        let d = bisect(self.axiom.records(), recorded);
        if d.is_some() {
            self.counters.axiom_replay_divergence.inc();
        }
        d
    }

    /// Adopts a recorded axiom and its reduction as this kernel's control
    /// state — simulated reboot persistence. The freshly booted components
    /// take on the statuses the axiom proves (quarantined components stay
    /// benched and release their clone images; crashed/hung ones remain
    /// dead until a recovery request resolves them — their in-flight
    /// request context was volatile and did not survive the reboot), the
    /// clock advances to the log's last timestamp, and the chain continues
    /// from the recorded head so subsequent events extend the same history.
    pub fn adopt_axiom(&mut self, log: AxiomLog, state: ControlState) {
        self.clock.advance_to(state.last_now.max(self.clock.now()));
        for (i, comp) in self.comps.iter_mut().enumerate() {
            comp.status = match state.status(i as u8) {
                CompStatusCode::Alive => CompStatus::Alive,
                CompStatusCode::Hung => CompStatus::Hung,
                CompStatusCode::Crashed => CompStatus::Crashed,
                CompStatusCode::Quarantined => CompStatus::Quarantined,
            };
            if comp.status == CompStatus::Quarantined {
                if let Some(image) = comp.pristine_image.take() {
                    image.release(&mut self.cas);
                }
            }
        }
        self.recovering = state.recovering.filter(|&t| {
            (t as usize) < self.comps.len() && self.comps[t as usize].status == CompStatus::Crashed
        });
        self.control = state;
        self.axiom = log;
        self.tracer.set_now(self.clock.now());
    }

    /// Records an uncontrolled-crash shutdown: the trace event, the black
    /// box dump, and the state transition itself.
    fn crash_shutdown(&mut self, reason: String) {
        self.axiom_emit(AxiomEvent::ShutdownDecision { controlled: false });
        self.tracer.set_now(self.clock.now());
        self.tracer.emit(
            KERNEL_COMP,
            TraceEvent::ShutdownDecision { controlled: false },
        );
        self.dump_blackbox(&format!("uncontrolled crash: {reason}"));
        self.shutdown = Some(ShutdownKind::Crash(reason));
    }

    /// Registers a component. The first component registered with
    /// `privileged = true` becomes the Recovery Server endpoint that crash
    /// notifications are routed to.
    ///
    /// # Panics
    ///
    /// Panics if called after [`Kernel::init_components`].
    pub fn register(&mut self, server: Box<dyn Server<P>>, privileged: bool) -> Endpoint {
        assert!(!self.initialized, "register() after init_components()");
        let idx = u8::try_from(self.comps.len()).expect("too many components");
        let name = server.name();
        let mut heap = Heap::new(name);
        heap.set_tracer(self.tracer.clone(), idx);
        let stats = CompStats::register(&self.metrics, name, idx);
        self.comps.push(Comp {
            name,
            server,
            pristine_server: None,
            heap,
            pristine_image: None,
            window: RecoveryWindow::new(),
            inbox: VecDeque::new(),
            status: CompStatus::Alive,
            crash_info: None,
            privileged,
            stats,
        });
        if privileged && self.rs_ep.is_none() {
            self.rs_ep = Some(idx);
        }
        Endpoint::Component(idx)
    }

    /// Installs the fault-injection hook.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.hook = hook;
    }

    /// Runs every component's `init`, captures the pristine clone images for
    /// the Recovery Server's spare-copy pool, and resets all statistics so
    /// that boot time is excluded from measurements (as the paper's
    /// evaluation does).
    pub fn init_components(&mut self) {
        assert!(!self.initialized, "init_components() called twice");
        self.initialized = true;
        for idx in 0..self.comps.len() {
            let Kernel {
                cfg,
                comps,
                hook,
                clock,
                next_msg_id,
                ..
            } = self;
            let comp = &mut comps[idx];
            let mut ctx = Ctx {
                comp_name: comp.name,
                self_ep: Endpoint::Component(idx as u8),
                heap: &mut comp.heap,
                window: &mut comp.window,
                policy: cfg.policy.as_ref(),
                hook: hook.as_mut(),
                cost: &cfg.cost,
                now: clock.now(),
                cycles: 0,
                out: Vec::new(),
                timers: Vec::new(),
                priv_ops: Vec::new(),
                privileged: comp.privileged,
                next_msg_id,
                replied: Vec::new(),
                cur_replyable: false,
                cur_span: None,
                tamper: ReplyTamper::None,
            };
            comp.server.init(&mut ctx);
            let out = std::mem::take(&mut ctx.out);
            let timers = std::mem::take(&mut ctx.timers);
            let cycles = ctx.cycles;
            self.clock.advance(cycles);
            self.route_messages(out);
            self.register_timers(idx as u8, timers);
            let comp = &mut self.comps[idx];
            comp.pristine_image = Some(comp.heap.clone_image(&mut self.cas, None));
            comp.pristine_server = Some(comp.server.clone_box());
            if self.cfg.instrumentation == Instrumentation::Always {
                comp.heap.set_force_logging(true);
            }
        }
        // Boot is over: measurements start clean.
        for comp in &mut self.comps {
            comp.heap.reset_stats();
            comp.window.reset_stats();
        }
        self.metrics.reset();
        self.tracer.set_now(self.clock.now());
        self.tracer.clear();
        // Span ids and the recovery epoch restart at the boot barrier so
        // same-seed runs mint byte-identical span streams.
        self.next_span_id = 0;
        self.recovery_epoch = 0;
        self.sampler.reset(self.clock.now());
        // The axiom likewise starts at the boot barrier: its first event
        // seals the control-relevant configuration, so two axioms are only
        // comparable (replay, bisect) when policy/instrumentation/topology
        // match.
        self.axiom.reset();
        let instr = match self.cfg.instrumentation {
            Instrumentation::Off => 0u8,
            Instrumentation::WindowGated => 1,
            Instrumentation::Always => 2,
        };
        let config_digest = osiris_axiom::fnv1a(
            osiris_axiom::fnv1a_str(self.cfg.policy.name()),
            &[
                instr,
                self.comps.len() as u8,
                self.cfg.watchdog.enabled as u8,
            ],
        );
        self.axiom_emit(AxiomEvent::Genesis {
            comps: self.comps.len() as u8,
            config_digest,
        });
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// The endpoint of the component called `name`, if registered.
    pub fn endpoint_of(&self, name: &str) -> Option<Endpoint> {
        self.comps
            .iter()
            .position(|c| c.name == name)
            .map(|i| Endpoint::Component(i as u8))
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Advances virtual time by `cycles` (user-level computation).
    pub fn charge(&mut self, cycles: u64) {
        self.clock.advance(cycles);
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &CostModel {
        &self.cfg.cost
    }

    /// The shutdown state, if the system has stopped.
    pub fn shutdown_state(&self) -> Option<&ShutdownKind> {
        self.shutdown.as_ref()
    }

    /// Whether a controlled shutdown has been decided but the grace window
    /// (paper §VII) is still open for state-saving syscalls.
    pub fn shutdown_pending(&self) -> bool {
        self.shutdown_pending.is_some()
    }

    /// Begins a controlled shutdown: immediate if no grace is configured,
    /// otherwise deferred so applications can save state first.
    fn begin_controlled_shutdown(&mut self, reason: String) {
        if self.shutdown.is_some() || self.shutdown_pending.is_some() {
            return;
        }
        self.axiom_emit(AxiomEvent::ShutdownDecision { controlled: true });
        self.tracer.set_now(self.clock.now());
        self.tracer.emit(
            KERNEL_COMP,
            TraceEvent::ShutdownDecision { controlled: true },
        );
        if self.cfg.shutdown_grace > 0 {
            self.shutdown_pending =
                Some((ShutdownKind::Controlled(reason), self.cfg.shutdown_grace));
        } else {
            self.shutdown = Some(ShutdownKind::Controlled(reason));
        }
    }

    /// Finalizes a pending controlled shutdown (grace exhausted or system
    /// quiescent).
    fn finalize_pending_shutdown(&mut self) {
        if let Some((kind, _)) = self.shutdown_pending.take() {
            if self.shutdown.is_none() {
                self.shutdown = Some(kind);
            }
        }
    }

    /// Forces the system into the given shutdown state (used by the host on
    /// external aborts).
    pub fn force_shutdown(&mut self, kind: ShutdownKind) {
        if self.shutdown.is_none() {
            if let ShutdownKind::Crash(reason) = kind {
                self.crash_shutdown(reason);
            } else {
                self.shutdown = Some(kind);
            }
        }
    }

    /// System-wide metrics, assembled as a view over the registry. The
    /// crash total is derived from the per-component crash counters — the
    /// kernel keeps no separate tally.
    pub fn metrics(&self) -> KernelMetrics {
        KernelMetrics {
            ipc_delivered: self.counters.ipc_delivered.get(),
            syscalls: self.counters.syscalls.get(),
            timers_fired: self.counters.timers_fired.get(),
            crashes: self.comps.iter().map(|c| c.stats.crashes.get()).sum(),
            quarantines: self.comps.iter().map(|c| c.stats.quarantines.get()).sum(),
            hangs: self.counters.hangs.get(),
            recovered_rollback: self.counters.recovered_rollback.get(),
            recovered_fresh: self.counters.recovered_fresh.get(),
            recovered_naive: self.counters.recovered_naive.get(),
            recovered_quiescent: self.counters.recovered_quiescent.get(),
            controlled_shutdowns: self.counters.controlled_shutdowns.get(),
            recovery_cycles: self.counters.recovery_cycles.get(),
            wd_armed: self.counters.wd_armed_total.get(),
            wd_expired: self.counters.wd_expired.get(),
            wd_probes: self.counters.wd_probes.get(),
            wd_verdicts: self.counters.wd_verdict_hung.get()
                + self.counters.wd_verdict_slow.get()
                + self.counters.wd_verdict_reply_lost.get()
                + self.counters.wd_verdict_corrupt.get(),
            wd_replies_rejected: self.counters.wd_replies_rejected.get(),
            retries_granted: self.counters.retry_granted.get(),
            retries_denied: self.counters.retry_denied.get(),
            retries_exhausted: self.counters.retry_exhausted.get(),
        }
    }

    /// The metrics registry backing every counter this kernel maintains.
    pub fn metrics_handle(&self) -> &MetricsHandle {
        &self.metrics
    }

    /// Refreshes the registry series that mirror externally maintained
    /// state: heap residency and checkpoint tallies (kept as plain fields
    /// on the store's hot path) and window coverage counters. Call before
    /// exporting; [`Kernel::component_reports`] does it automatically.
    pub fn sync_registry(&self) {
        self.counters.axiom_bytes.set(if self.axiom.enabled() {
            self.axiom.bytes_len() as u64
        } else {
            0
        });
        self.counters.cas_chunks.set(self.cas.chunk_count() as u64);
        self.counters
            .cas_bytes
            .set(self.cas.resident_bytes() as u64);
        self.counters
            .cas_dedup_hits
            .set_total(self.cas.dedup_hits());
        // Attribute each store chunk's resident bytes to the first image
        // (in endpoint order) that references it: per-component deduped
        // cost, summing to the store's resident total.
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for c in &self.comps {
            let h = c.heap.stats();
            c.stats.heap_bytes.set(c.heap.resident_bytes() as u64);
            c.stats
                .clone_bytes
                .set(c.pristine_image.as_ref().map(|i| i.bytes()).unwrap_or(0) as u64);
            let dedup: usize = c
                .pristine_image
                .as_ref()
                .map(|i| {
                    i.chunk_refs()
                        .filter(|d| seen.insert(*d))
                        .map(|d| self.cas.chunk_bytes(d).unwrap_or(0))
                        .sum()
                })
                .unwrap_or(0);
            c.stats.clone_dedup_bytes.set(dedup as u64);
            c.stats
                .undo_window_peak_bytes
                .set(h.undo_bytes_window_peak.max(h.undo_bytes_peak) as u64);
            c.stats.writes.set_total(h.writes);
            c.stats.undo_appends.set_total(h.undo_appends);
            c.stats.coalesced_writes.set_total(h.coalesced_writes);
            let w = c.window.stats();
            c.stats.window_opens.set_total(w.opens);
            c.stats.window_rollbacks.set_total(w.rollbacks);
        }
    }

    /// Enqueues a user syscall as a request message to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a component endpoint or init has not run.
    pub fn send_user_request(&mut self, dst: Endpoint, payload: P, sid: SyscallId, pid: Pid) {
        assert!(self.initialized, "kernel not initialized");
        let Endpoint::Component(c) = dst else {
            panic!("user requests must target components")
        };
        self.counters.syscalls.inc();
        if let Some((_, budget)) = &mut self.shutdown_pending {
            *budget = budget.saturating_sub(1);
        }
        self.clock
            .advance(self.cfg.cost.syscall_entry + self.cfg.cost.ipc_send);
        self.tracer.set_now(self.clock.now());
        self.tracer.emit(
            c,
            TraceEvent::SyscallEnter {
                sid: sid.0,
                pid: pid.0,
            },
        );
        // Workload entry point: mint the causal span that every message,
        // timer and continuation derived from this request will carry. The
        // id is minted unconditionally (message identity must not depend on
        // whether telemetry is on); the recording decision is sampled once
        // here and carried in the span, so hop and close sites branch on a
        // plain bool instead of the handles' shared atomics.
        self.next_span_id += 1;
        let span = SpanInfo {
            id: self.next_span_id,
            opened_at: self.clock.now(),
            epoch_at_open: self.recovery_epoch,
            record: self.tracer.is_enabled() || self.metrics.enabled(),
        };
        if span.record {
            self.counters.spans_started.inc();
            self.tracer.emit(
                KERNEL_COMP,
                TraceEvent::SpanOpen {
                    span: span.id,
                    sid: sid.0,
                    pid: pid.0,
                },
            );
        }
        self.next_msg_id += 1;
        let msg = Message {
            id: MsgId(self.next_msg_id),
            src: Endpoint::Process(pid),
            dst,
            reply_to: None,
            user_tag: Some(sid),
            seep: payload.seep(),
            span: Some(span),
            integrity: 0,
            payload,
        };
        self.watchdog_arm(&msg, 0);
        self.comps[c as usize].inbox.push_back(msg);
    }

    /// Takes the user-syscall replies produced since the last call.
    pub fn take_user_replies(&mut self) -> Vec<(SyscallId, Pid, SysReply)> {
        std::mem::take(&mut self.user_replies)
    }

    /// Takes the kill events (processes PM terminated outside a syscall)
    /// produced since the last call.
    pub fn take_kill_events(&mut self) -> Vec<Pid> {
        std::mem::take(&mut self.kill_events)
    }

    /// Whether any timer (or scheduled transparent retry) is pending.
    pub fn has_pending_timers(&self) -> bool {
        !self.timers.is_empty() || !self.retry_wait.is_empty()
    }

    /// Advances the clock to the next timer or scheduled retry and delivers
    /// its message. Returns `false` if neither was pending.
    pub fn fire_next_timer(&mut self) -> bool {
        let next_timer = self.timers.keys().next().copied();
        let next_retry = self.retry_wait.keys().next().copied();
        let fired = match (next_timer, next_retry) {
            (None, None) => false,
            (Some(t), Some(r)) if r.0 < t.0 => {
                self.fire_retry(r);
                true
            }
            (Some(t), _) => {
                self.fire_timer(t);
                true
            }
            (None, Some(r)) => {
                self.fire_retry(r);
                true
            }
        };
        if fired {
            // Timer fires are the idle-time service points: a deadline that
            // expired while nothing was runnable is detected here, bounding
            // hang-detection latency by the armed deadline plus one
            // heartbeat period.
            self.service_watchdog();
        }
        fired
    }

    fn fire_timer(&mut self, key: (u64, u64)) {
        let (dst, span, payload) = self.timers.remove(&key).expect("timer key just observed");
        self.clock.advance_to(key.0);
        self.tracer.set_now(self.clock.now());
        self.counters.timers_fired.inc();
        self.next_msg_id += 1;
        let msg = Message {
            id: MsgId(self.next_msg_id),
            src: Endpoint::Kernel,
            dst: Endpoint::Component(dst),
            reply_to: None,
            user_tag: None,
            seep: payload.seep(),
            span,
            integrity: 0,
            payload,
        };
        self.comps[dst as usize].inbox.push_back(msg);
    }

    /// Re-delivers a retried request once its backoff elapsed: the message
    /// keeps its identity (id, requester, span), so the eventual reply
    /// correlates exactly as the original's would have — the retry is
    /// invisible to both endpoints.
    fn fire_retry(&mut self, key: (u64, u64)) {
        let (attempt, msg) = self
            .retry_wait
            .remove(&key)
            .expect("retry key just observed");
        self.clock.advance_to(key.0);
        self.tracer.set_now(self.clock.now());
        let Endpoint::Component(c) = msg.dst else {
            return;
        };
        self.watchdog_arm(&msg, attempt);
        self.comps[c as usize].inbox.push_back(msg);
    }

    /// Processes queued messages until the system is quiescent (all inboxes
    /// of runnable components empty), recovery stalls everything, or the
    /// system shuts down.
    pub fn pump(&mut self) {
        assert!(self.initialized, "kernel not initialized");
        loop {
            if self.shutdown.is_some() {
                return;
            }
            self.bounce_quarantined_mail();
            self.service_watchdog();
            if self.shutdown.is_some() {
                return;
            }
            let Some(idx) = self.pick_runnable() else {
                return;
            };
            if let Some((_, budget)) = &mut self.shutdown_pending {
                if *budget == 0 {
                    self.finalize_pending_shutdown();
                    return;
                }
                *budget -= 1;
            }
            let msg = self.comps[idx]
                .inbox
                .pop_front()
                .expect("picked component has mail");
            self.process_message(idx, msg);
            // Telemetry tick: one branch when disabled, one snapshot per
            // crossed Δ-grid point when enabled.
            self.sampler.maybe_sample(self.clock.now());
        }
    }

    fn pick_runnable(&mut self) -> Option<usize> {
        let n = self.comps.len();
        if n == 0 {
            return None;
        }
        // During recovery only the Recovery Server runs: syscall processing
        // is stalled until recovery completes (paper §II-E).
        if self.recovering.is_some() {
            let rs = self.rs_ep.expect("recovery in progress requires an RS") as usize;
            let c = &self.comps[rs];
            if c.status == CompStatus::Alive && !c.inbox.is_empty() {
                return Some(rs);
            }
            return None;
        }
        for off in 0..n {
            let idx = (self.rr_cursor + off) % n;
            let c = &self.comps[idx];
            if c.status == CompStatus::Alive && !c.inbox.is_empty() {
                self.rr_cursor = (idx + 1) % n;
                return Some(idx);
            }
        }
        None
    }

    fn process_message(&mut self, idx: usize, msg: Message<P>) {
        self.counters.ipc_delivered.inc();
        let checkpointing = self.cfg.policy.checkpointing();
        let instr = self.cfg.instrumentation;
        let deliver_cost = self.cfg.cost.ipc_deliver + self.cfg.cost.handler_base;
        self.clock.advance(deliver_cost);
        self.tracer.set_now(self.clock.now());
        self.tracer.emit(
            idx as u8,
            TraceEvent::IpcDeliver {
                src: match msg.src {
                    Endpoint::Component(c) => c,
                    _ => KERNEL_COMP,
                },
                msg_id: msg.id.0,
            },
        );
        if let Some(span) = msg.span {
            if span.record {
                self.counters.span_hops.inc();
                self.tracer.emit(
                    idx as u8,
                    TraceEvent::SpanHop {
                        span: span.id,
                        src: match msg.src {
                            Endpoint::Component(c) => c,
                            _ => KERNEL_COMP,
                        },
                        msg_id: msg.id.0,
                    },
                );
            }
        }

        let Kernel {
            cfg,
            comps,
            hook,
            clock,
            next_msg_id,
            axiom,
            control,
            counters,
            ..
        } = self;
        let comp = &mut comps[idx];
        comp.stats.messages.inc();
        // Top of the request-processing loop: open the recovery window
        // (taking a checkpoint) — or mark the request unprotected for
        // baseline policies that do no checkpointing.
        if checkpointing {
            comp.window.open(&mut comp.heap);
            Self::axiom_note(
                control,
                axiom,
                counters,
                clock.now(),
                AxiomEvent::WindowOpen { comp: idx as u8 },
            );
            if instr == Instrumentation::Off {
                comp.heap.set_logging(false);
            }
        } else {
            comp.window.begin_unprotected();
        }
        comp.window.charge(deliver_cost);

        let writes_before = comp.heap.stats().writes;
        let appends_before = comp.heap.stats().undo_appends;
        let coalesced_before = comp.heap.stats().coalesced_writes;
        let cycles_in_before = comp.window.stats().cycles_in;
        let undo_bytes_before = comp.heap.stats().undo_bytes_appended;
        let cur_replyable = msg.seep.kind == MessageKind::Request && msg.seep.reply_possible;

        let mut ctx = Ctx {
            comp_name: comp.name,
            self_ep: Endpoint::Component(idx as u8),
            heap: &mut comp.heap,
            window: &mut comp.window,
            policy: cfg.policy.as_ref(),
            hook: hook.as_mut(),
            cost: &cfg.cost,
            now: clock.now(),
            cycles: 0,
            out: Vec::new(),
            timers: Vec::new(),
            priv_ops: Vec::new(),
            privileged: comp.privileged,
            next_msg_id,
            replied: Vec::new(),
            cur_replyable,
            cur_span: msg.span,
            tamper: ReplyTamper::None,
        };

        let server = &mut comp.server;
        let result = catch_unwind(AssertUnwindSafe(|| server.handle(&msg, &mut ctx)));

        // Messages sent before the crash point are already on the wire:
        // deliver them regardless of the handler's fate.
        let mut out = std::mem::take(&mut ctx.out);
        let timers = std::mem::take(&mut ctx.timers);
        let priv_ops = std::mem::take(&mut ctx.priv_ops);
        let replied_to_msg = ctx.has_replied_to(msg.id);
        let ctx_cycles = ctx.cycles;
        let tamper = ctx.tamper;
        drop(ctx);

        // An injected fail-silent reply tamper applies to the first
        // outbound reply: `Drop` loses it on the wire, `Corrupt` breaks the
        // integrity stamp sealed at send time.
        if tamper != ReplyTamper::None {
            if let Some(pos) = out.iter().position(|m| m.reply_to.is_some()) {
                match tamper {
                    ReplyTamper::Drop => {
                        out.remove(pos);
                    }
                    ReplyTamper::Corrupt => out[pos].integrity ^= 0xBAD0_BAD0_BAD0_BAD0,
                    ReplyTamper::None => {}
                }
            }
        }

        // Account handler cycles and memory-write costs. Logged writes
        // happened while the window was open; unlogged ones outside (exact
        // under window-gated instrumentation, the measurement mode).
        // Coalesced writes were logged but elided by the journal: they pay
        // only the memory write, not the undo append.
        let writes = comp.heap.stats().writes - writes_before;
        let appends = comp.heap.stats().undo_appends - appends_before;
        let coalesced = comp.heap.stats().coalesced_writes - coalesced_before;
        let logged = (appends + coalesced).min(writes);
        let write_cost_in =
            appends * (cfg.cost.mem_write + cfg.cost.undo_append) + coalesced * cfg.cost.mem_write;
        let write_cost_out = (writes - logged) * cfg.cost.mem_write;
        comp.window.charge_split(write_cost_in, write_cost_out);
        let handler_cycles = ctx_cycles + write_cost_in + write_cost_out;
        comp.stats.cycles.add(handler_cycles + deliver_cost);
        self.clock.advance(handler_cycles);
        self.tracer.set_now(self.clock.now());

        self.route_messages(out);
        self.register_timers(idx as u8, timers);

        match result {
            Ok(()) => {
                let comp = &mut self.comps[idx];
                if checkpointing {
                    comp.window.complete(&mut comp.heap);
                    comp.stats
                        .window_hist
                        .observe(comp.window.stats().cycles_in - cycles_in_before);
                    comp.stats
                        .undo_hist
                        .observe(comp.heap.stats().undo_bytes_appended - undo_bytes_before);
                }
                if let Some((reason, class)) = comp.window.take_last_close() {
                    self.axiom_emit(AxiomEvent::WindowClose {
                        comp: idx as u8,
                        reason,
                        class,
                    });
                }
                self.execute_priv_ops(priv_ops);
                self.watchdog_after_ok(idx as u8, msg);
            }
            Err(payload) => {
                let reply_possible = msg.seep.kind == MessageKind::Request
                    && msg.seep.reply_possible
                    && !replied_to_msg;
                // A mid-handler close (DisallowedSend / ThreadYield) may have
                // been staged before the panic propagated; seal it first so
                // the axiom orders the close before the fault event.
                if let Some((reason, class)) = self.comps[idx].window.take_last_close() {
                    self.axiom_emit(AxiomEvent::WindowClose {
                        comp: idx as u8,
                        reason,
                        class,
                    });
                }
                // Any capture starts a new recovery epoch: spans opened
                // before this point count as having crossed a recovery.
                self.recovery_epoch += 1;
                if payload.downcast_ref::<InjectedHang>().is_some() {
                    // The component is wedged: it stops processing messages
                    // until the Recovery Server's heartbeat declares it dead.
                    self.counters.hangs.inc();
                    self.tracer
                        .emit(idx as u8, TraceEvent::HangDetected { target: idx as u8 });
                    self.axiom_emit(AxiomEvent::HangDetected { comp: idx as u8 });
                    let comp = &mut self.comps[idx];
                    comp.status = CompStatus::Hung;
                    let window_open = comp.window.is_open();
                    let scoped_sends = comp.window.had_scoped_sends();
                    comp.crash_info = Some(PendingCrash {
                        msg,
                        window_open,
                        reply_possible,
                        scoped_sends,
                        in_recovery_code: self.recovering.is_some(),
                        quiescent: false,
                    });
                } else {
                    self.comps[idx].stats.crashes.inc();
                    self.tracer
                        .emit(idx as u8, TraceEvent::Crash { target: idx as u8 });
                    self.axiom_emit(AxiomEvent::Crash { comp: idx as u8 });
                    self.handle_crash(idx, msg, reply_possible);
                }
            }
        }
    }

    fn handle_crash(&mut self, idx: usize, msg: Message<P>, reply_possible: bool) {
        let in_recovery_code = self.recovering.is_some();
        if in_recovery_code && self.rs_ep != Some(idx as u8) {
            // While a recovery is in flight only the RS is scheduled, so a
            // second crash in any *other* component cannot happen; keep the
            // defensive shutdown for the impossible case.
            self.crash_shutdown(format!(
                "component {} crashed during recovery of another component",
                self.comps[idx].name
            ));
            return;
        }
        let comp = &mut self.comps[idx];
        comp.status = CompStatus::Crashed;
        let window_open = comp.window.is_open();
        let scoped_sends = comp.window.had_scoped_sends();
        comp.crash_info = Some(PendingCrash {
            msg,
            window_open,
            reply_possible,
            scoped_sends,
            in_recovery_code,
            quiescent: false,
        });

        if in_recovery_code {
            // The RS crashed mid-conduct. The kernel recovers the RS itself,
            // then re-drives the persisted intents of the interrupted
            // conduct — this is what lifts the paper's single-fault
            // limitation for faults in the recovery path.
            self.recovering = None;
            self.execute_recovery(idx as u8);
            self.replay_intents();
            return;
        }

        match self.rs_ep {
            // The Recovery Server itself crashed (or no RS exists): the
            // kernel performs the recovery directly (paper §V: "all core
            // system components, including RS itself, can be recovered").
            Some(rs) if rs as usize != idx => {
                self.recovering = Some(idx as u8);
                self.note_intent(idx as u8, IntentPhase::Notified);
                self.next_msg_id += 1;
                let payload = P::crash_notify(idx as u8);
                let notify = Message {
                    id: MsgId(self.next_msg_id),
                    src: Endpoint::Kernel,
                    dst: Endpoint::Component(rs),
                    reply_to: None,
                    user_tag: None,
                    seep: payload.seep(),
                    span: None,
                    integrity: 0,
                    payload,
                };
                self.comps[rs as usize].inbox.push_back(notify);
            }
            _ => self.execute_recovery(idx as u8),
        }
    }

    /// Updates (or creates) the persisted recovery intent for `target`.
    ///
    /// The intent "log" is no longer a separate structure: recording an
    /// intent is an axiom event, and the live intent table is the
    /// [`ControlState`] reduction of the axiom tail.
    fn note_intent(&mut self, target: u8, phase: IntentPhase) {
        self.axiom_emit(AxiomEvent::IntentRecorded {
            comp: target,
            phase: phase.into(),
        });
    }

    /// Marks the intent for `target` resolved (recovery completed, target
    /// quarantined, or the intent found stale during re-drive).
    fn resolve_intent(&mut self, target: u8) {
        if self.control.intent(target).active {
            self.axiom_emit(AxiomEvent::IntentResolved { comp: target });
        }
    }

    /// Re-drives the persisted recovery intents after the RS itself was
    /// recovered: each interrupted conduct is re-notified to the restarted
    /// RS, or — after [`MAX_INTENT_REPLAYS`] replays keep crashing it —
    /// completed by the kernel directly.
    fn replay_intents(&mut self) {
        if self.shutdown.is_some() || self.shutdown_pending.is_some() {
            return;
        }
        let Some(rs) = self.rs_ep else { return };
        if self.comps[rs as usize].status != CompStatus::Alive {
            return;
        }
        let targets: Vec<u8> = self.control.active_intents().collect();
        for target in targets {
            let t = target as usize;
            if self.comps[t].status != CompStatus::Crashed || self.comps[t].crash_info.is_none() {
                // The recovery actually completed (or the component was
                // quarantined) before the RS died; nothing to re-drive.
                self.resolve_intent(target);
                continue;
            }
            self.tracer.set_now(self.clock.now());
            self.tracer
                .emit(KERNEL_COMP, TraceEvent::IntentReplayed { target });
            self.axiom_emit(AxiomEvent::IntentReplayed { comp: target });
            let replays = self.control.intent(target).replays;
            if replays <= MAX_INTENT_REPLAYS {
                self.counters.intent_replays.inc();
                if self.recovering.is_none() {
                    self.recovering = Some(target);
                }
                self.next_msg_id += 1;
                let payload = P::crash_notify(target);
                let notify = Message {
                    id: MsgId(self.next_msg_id),
                    src: Endpoint::Kernel,
                    dst: Endpoint::Component(rs),
                    reply_to: None,
                    user_tag: None,
                    seep: payload.seep(),
                    span: None,
                    integrity: 0,
                    payload,
                };
                self.comps[rs as usize].inbox.push_back(notify);
            } else {
                // The RS keeps dying while conducting this recovery
                // (a persistent fault in its conduct path): stop trusting it
                // with this target and complete the recovery directly.
                self.counters.intent_completed.inc();
                self.recovering = Some(target);
                self.execute_recovery(target);
            }
        }
    }

    fn execute_priv_ops(&mut self, ops: Vec<PrivOp>) {
        for op in ops {
            match op {
                PrivOp::Recover { target } => self.execute_recovery(target),
                PrivOp::KillHung { target } => {
                    let t = target as usize;
                    if self.comps[t].status == CompStatus::Hung {
                        self.comps[t].status = CompStatus::Crashed;
                        self.comps[t].stats.crashes.inc();
                        self.tracer.set_now(self.clock.now());
                        self.tracer.emit(target, TraceEvent::Crash { target });
                        self.axiom_emit(AxiomEvent::Crash { comp: target });
                        self.execute_recovery(target);
                    }
                }
                PrivOp::ControlledShutdown { reason } => {
                    self.counters.controlled_shutdowns.inc();
                    self.begin_controlled_shutdown(reason.to_string());
                }
                PrivOp::Quarantine { target } => self.execute_quarantine(target),
                PrivOp::RefreshImage { target } => self.refresh_image(target),
                PrivOp::RecordIntent { target, phase } => self.note_intent(target, phase),
                PrivOp::NoteEscalation {
                    target,
                    restarts_in_window,
                    backoff,
                    exhausted,
                } => {
                    self.axiom_emit(AxiomEvent::EscalationStep {
                        comp: target,
                        restarts_in_window,
                        backoff,
                        exhausted,
                    });
                    let stats = &self.comps[target as usize].stats;
                    stats
                        .escalation_restarts_window
                        .set(restarts_in_window as u64);
                    self.tracer.set_now(self.clock.now());
                    if backoff > 0 {
                        stats.escalation_backoff_arms.inc();
                        self.tracer.emit(
                            KERNEL_COMP,
                            TraceEvent::BackoffArmed {
                                target,
                                delay: backoff,
                            },
                        );
                    }
                    if exhausted {
                        stats.escalation_budget_exhausted.inc();
                        self.tracer
                            .emit(KERNEL_COMP, TraceEvent::BudgetExhausted { target });
                    }
                }
            }
        }
    }

    /// Refreshes `target`'s spare clone image against the content-addressed
    /// pool (requested by the RS off the recovery hot path). The refresh is
    /// incremental: objects whose dirty epoch still matches the manifest
    /// reshare their chunks, so a clean heap costs a refcount sweep, not a
    /// copy. A dead/benched component or a heap that diverged from the
    /// pristine image skips the refresh (the spare copy must stay pristine).
    fn refresh_image(&mut self, target: u8) {
        let refreshed = self.refresh_image_inner(target);
        self.axiom_emit(AxiomEvent::PoolRefresh {
            comp: target,
            refreshed,
        });
    }

    fn refresh_image_inner(&mut self, target: u8) -> bool {
        let t = target as usize;
        if self.comps[t].status != CompStatus::Alive {
            self.counters.pool_refresh_skipped.inc();
            return false;
        }
        let Kernel {
            comps,
            cas,
            counters,
            ..
        } = self;
        let comp = &mut comps[t];
        let Some(prev) = comp.pristine_image.take() else {
            counters.pool_refresh_skipped.inc();
            return false;
        };
        if !comp.heap.clean_for(&prev) {
            comp.pristine_image = Some(prev);
            counters.pool_refresh_skipped.inc();
            return false;
        }
        let fresh = comp.heap.clone_image(cas, Some(&prev));
        prev.release(cas);
        comp.pristine_image = Some(fresh);
        counters.pool_refreshed.inc();
        true
    }

    /// Benches a crash-looping component: reconciles its pending requester
    /// with a crash reply, marks it [`CompStatus::Quarantined`] (never
    /// scheduled again), and unstalls the system. Its queued and future
    /// requests are bounced by [`Kernel::bounce_quarantined_mail`].
    fn execute_quarantine(&mut self, target: u8) {
        let t = target as usize;
        self.tracer.set_now(self.clock.now());
        if let Some(pending) = self.comps[t].crash_info.take() {
            self.send_crash_reply(target, pending.msg);
        }
        self.comps[t].status = CompStatus::Quarantined;
        self.comps[t].stats.quarantines.inc();
        // A benched component will never be restarted: return its clone
        // image's chunk references to the pool so shared chunks survive
        // only as long as some live component still needs them.
        if let Some(image) = self.comps[t].pristine_image.take() {
            image.release(&mut self.cas);
        }
        // The Quarantined axiom event resolves the intent and clears the
        // window bit in the control-state fold; no separate bookkeeping.
        self.axiom_emit(AxiomEvent::Quarantined { comp: target });
        self.tracer
            .emit(KERNEL_COMP, TraceEvent::Quarantined { target });
        if self.recovering == Some(target) {
            self.recovering = None;
        }
    }

    /// Drains the inboxes of quarantined components: requests are answered
    /// with an immediate crash reply (error virtualization without running
    /// the component), replies and notifications are dropped.
    fn bounce_quarantined_mail(&mut self) {
        for idx in 0..self.comps.len() {
            if self.comps[idx].status != CompStatus::Quarantined {
                continue;
            }
            while let Some(msg) = self.comps[idx].inbox.pop_front() {
                if msg.seep.kind == MessageKind::Request {
                    self.comps[idx].stats.quarantine_refusals.inc();
                    self.tracer.set_now(self.clock.now());
                    self.send_crash_reply(idx as u8, msg);
                }
            }
        }
    }

    /// Consults the fault hook at a kernel recovery-phase site: a fail-stop
    /// or hang effect here means the phase itself failed (the kernel cannot
    /// panic — it runs below the `catch_unwind` boundary, so the effect is
    /// absorbed as "this phase cannot be executed").
    fn recovery_phase_faulted(&mut self, site: &'static str) -> bool {
        let probe = Probe {
            component: "kernel",
            site,
            kind: SiteKind::Block,
            now: self.clock.now(),
            window_open: false,
            replyable: false,
        };
        matches!(
            self.hook.on_site(&probe),
            FaultEffect::Panic | FaultEffect::Hang
        )
    }

    /// Degrades `action` to the next rung of the fallback chain, counting
    /// and tracing the transition.
    fn note_fallback(&mut self, action: &mut RecoveryAction, target: u8) {
        let from = *action;
        let to = fallback_action(from).expect("terminal recovery actions have no phase to fail");
        match from {
            RecoveryAction::RollbackAndErrorReply | RecoveryAction::RollbackAndKillRequester => {
                self.counters.fb_rollback_fresh.inc()
            }
            _ => self.counters.fb_fresh_shutdown.inc(),
        }
        self.tracer.set_now(self.clock.now());
        self.tracer.emit(
            KERNEL_COMP,
            TraceEvent::RecoveryFallback {
                target,
                from: from.into(),
                to: to.into(),
            },
        );
        self.axiom_emit(AxiomEvent::RecoveryFallback {
            comp: target,
            from: from.into(),
            to: to.into(),
        });
        *action = to;
    }

    /// Executes the three recovery phases — restart, rollback,
    /// reconciliation — for the crashed component `target` (paper §IV-C).
    fn execute_recovery(&mut self, target: u8) {
        let t = target as usize;
        let Some(pending) = self.comps[t].crash_info.take() else {
            // Spurious request (e.g. the component already recovered, or a
            // stale backoff timer fired after a quarantine).
            self.resolve_intent(target);
            if self.recovering == Some(target) {
                self.recovering = None;
            }
            return;
        };
        self.tracer.set_now(self.clock.now());
        let crash_ctx = CrashContext {
            window_open: pending.window_open,
            reply_possible: pending.reply_possible,
            in_recovery_code: pending.in_recovery_code,
            scoped_sends: pending.scoped_sends,
            requester_is_process: matches!(pending.msg.src, Endpoint::Process(_)),
        };
        let mut decision = decide_recovery(self.cfg.policy.as_ref(), &crash_ctx);
        if pending.quiescent
            && matches!(
                decision.action,
                RecoveryAction::ControlledShutdown | RecoveryAction::UncontrolledCrash
            )
        {
            // The watchdog declared this component dead between requests:
            // its handler had committed and only the reply was lost or
            // tampered with, so the heap is a consistent post-transaction
            // state. The policy's "window closed, reply impossible" shutdown
            // verdict is for mid-flight crashes; here a keep-state restart
            // (fresh server object over the committed heap) is sound, and
            // the requester was already reconciled by the retry/crash-reply
            // interception.
            decision = RecoveryDecision::new(RecoveryAction::ContinueAsIs, false);
        }
        self.tracer.emit(
            KERNEL_COMP,
            TraceEvent::RecoveryDecision {
                target,
                action: decision.action.into(),
            },
        );
        self.axiom_emit(AxiomEvent::RecoveryDecision {
            comp: target,
            action: decision.action.into(),
        });
        if decision.action == RecoveryAction::UncontrolledCrash && pending.in_recovery_code {
            // The policy (correctly) refuses to recover a fault in recovery
            // code under the single-fault model. The kernel's intent log
            // makes the interrupted conduct re-drivable, so the crashed RS
            // can be fresh-restarted instead of taking the system down.
            self.counters.fb_crash_fresh.inc();
            self.tracer.emit(
                KERNEL_COMP,
                TraceEvent::RecoveryFallback {
                    target,
                    from: RecoveryAction::UncontrolledCrash.into(),
                    to: RecoveryAction::FreshRestart.into(),
                },
            );
            self.axiom_emit(AxiomEvent::RecoveryFallback {
                comp: target,
                from: RecoveryAction::UncontrolledCrash.into(),
                to: RecoveryAction::FreshRestart.into(),
            });
            decision = RecoveryDecision::new(RecoveryAction::FreshRestart, false);
        }
        let cost = self.cfg.cost;

        // Attempt loop: each recovery phase is itself fallible — a journal
        // or image integrity violation, or a fault injected inside the
        // phase, degrades to the next rung of the fallback chain instead of
        // executing a phase whose inputs cannot be trusted.
        let mut action = decision.action;
        let mut recovery_cycles = cost.reconcile;
        loop {
            match action {
                RecoveryAction::RollbackAndErrorReply
                | RecoveryAction::RollbackAndKillRequester => {
                    let journal_ok = match self.comps[t].heap.verify_journal() {
                        Ok(()) => {
                            self.counters.journal_ok.inc();
                            true
                        }
                        Err(_) => {
                            self.counters.journal_corrupt.inc();
                            false
                        }
                    };
                    if !journal_ok || self.recovery_phase_faulted("kernel.recovery.rollback") {
                        self.note_fallback(&mut action, target);
                        continue;
                    }
                    let comp = &mut self.comps[t];
                    // Restart phase: swap in the spare clone, transfer only
                    // the state that diverged from it (O(dirty), not O(heap)).
                    let dirty_bytes = comp
                        .pristine_image
                        .as_ref()
                        .map(|i| i.dirty_bytes_for(&comp.heap))
                        .unwrap_or_else(|| comp.heap.resident_bytes());
                    recovery_cycles +=
                        cost.restart_base + (dirty_bytes as u64 / 1024) * cost.restart_per_kb;
                    // Rollback phase: apply the undo log in reverse.
                    recovery_cycles += comp.heap.log_len() as u64 * cost.undo_rollback;
                    comp.window.rollback(&mut comp.heap);
                    comp.server = comp
                        .pristine_server
                        .as_ref()
                        .expect("pristine captured at init")
                        .clone_box();
                    comp.server.on_restore(&mut comp.heap);
                    comp.stats.recoveries.inc();
                    self.counters.recovered_rollback.inc();
                    break;
                }
                RecoveryAction::FreshRestart => {
                    let image_ok = match self.comps[t]
                        .pristine_image
                        .as_ref()
                        .expect("pristine captured at init")
                        .verify()
                    {
                        Ok(()) => {
                            self.counters.image_ok.inc();
                            true
                        }
                        Err(_) => {
                            self.counters.image_corrupt.inc();
                            false
                        }
                    };
                    if !image_ok || self.recovery_phase_faulted("kernel.recovery.restart") {
                        self.note_fallback(&mut action, target);
                        continue;
                    }
                    // Copy-on-write restore: verify and write back only the
                    // chunks of objects that diverged from the manifest. A
                    // chunk-digest or accounting violation here surfaces
                    // before any mutation, so a corrupt pool image degrades
                    // down the fallback chain with the heap intact.
                    let restored = {
                        let Kernel { comps, cas, .. } = self;
                        let comp = &mut comps[t];
                        let image = comp
                            .pristine_image
                            .as_ref()
                            .expect("pristine captured at init");
                        comp.heap.restore_image(image, cas)
                    };
                    let stats = match restored {
                        Ok(stats) => stats,
                        Err(_) => {
                            self.counters.image_corrupt.inc();
                            self.note_fallback(&mut action, target);
                            continue;
                        }
                    };
                    self.counters.restart_chunks_clean.add(stats.clean_chunks);
                    self.counters.restart_chunks_dirty.add(stats.dirty_chunks);
                    // Restart cost is proportional to the bytes actually
                    // copied, not to the resident heap size.
                    recovery_cycles += cost.restart_base
                        + (stats.bytes_restored as u64 / 1024) * cost.restart_per_kb;
                    self.tracer.emit(
                        KERNEL_COMP,
                        TraceEvent::CowRestore {
                            target,
                            clean: stats.clean_chunks.min(u32::MAX as u64) as u32,
                            dirty: stats.dirty_chunks.min(u32::MAX as u64) as u32,
                            bytes: stats.bytes_restored.min(u32::MAX as usize) as u32,
                        },
                    );
                    let comp = &mut self.comps[t];
                    comp.window.complete(&mut comp.heap);
                    comp.server = comp
                        .pristine_server
                        .as_ref()
                        .expect("pristine captured at init")
                        .clone_box();
                    comp.server.on_restore(&mut comp.heap);
                    comp.stats.recoveries.inc();
                    self.counters.recovered_fresh.inc();
                    break;
                }
                RecoveryAction::ContinueAsIs => {
                    let comp = &mut self.comps[t];
                    recovery_cycles += cost.restart_base;
                    comp.window.complete(&mut comp.heap);
                    comp.server = comp
                        .pristine_server
                        .as_ref()
                        .expect("pristine captured at init")
                        .clone_box();
                    comp.server.on_restore(&mut comp.heap);
                    comp.stats.recoveries.inc();
                    if pending.quiescent {
                        self.counters.recovered_quiescent.inc();
                    } else {
                        self.counters.recovered_naive.inc();
                    }
                    break;
                }
                RecoveryAction::ControlledShutdown => {
                    self.counters.controlled_shutdowns.inc();
                    let reason = format!(
                        "unrecoverable crash in {} (window {}, reply {})",
                        self.comps[t].name,
                        if pending.window_open {
                            "open"
                        } else {
                            "closed"
                        },
                        if pending.reply_possible {
                            "possible"
                        } else {
                            "impossible"
                        },
                    );
                    // The crashed component stays dead during the grace
                    // window.
                    self.resolve_intent(target);
                    self.recovering = None;
                    self.begin_controlled_shutdown(reason);
                    if self.shutdown_pending.is_some() {
                        // Grace is active: answer the failure-triggering
                        // request with ESHUTDOWN so the caller can proceed
                        // to save its state instead of blocking forever.
                        match pending.msg.src {
                            Endpoint::Process(pid) => {
                                if let Some(sid) = pending.msg.user_tag {
                                    self.tracer.emit(
                                        target,
                                        TraceEvent::SyscallExit {
                                            sid: sid.0,
                                            pid: pid.0,
                                            ok: false,
                                        },
                                    );
                                    self.close_span(pending.msg.span, false);
                                    self.user_replies.push((
                                        sid,
                                        pid,
                                        SysReply::Err(Errno::ESHUTDOWN),
                                    ));
                                }
                            }
                            Endpoint::Component(_) => {
                                self.send_crash_reply(target, pending.msg);
                            }
                            Endpoint::Kernel => {}
                        }
                    }
                    return;
                }
                RecoveryAction::UncontrolledCrash => {
                    let reason = format!(
                        "fault in recovery path while handling crash of {}",
                        self.comps[t].name
                    );
                    self.recovering = None;
                    self.crash_shutdown(reason);
                    return;
                }
            }
        }

        self.comps[t].status = CompStatus::Alive;
        self.counters.recovery_cycles.add(recovery_cycles);
        self.clock.advance(recovery_cycles);
        self.tracer.set_now(self.clock.now());
        // The rollback/complete above staged a window close for the
        // in-flight request; seal it before declaring the recovery done so
        // the axiom's event order matches the causal order.
        if let Some((reason, class)) = self.comps[t].window.take_last_close() {
            self.axiom_emit(AxiomEvent::WindowClose {
                comp: target,
                reason,
                class,
            });
        }
        self.tracer.emit(
            KERNEL_COMP,
            TraceEvent::RecoveryDone {
                target,
                cycles: recovery_cycles,
            },
        );
        self.axiom_emit(AxiomEvent::RecoveryDone {
            comp: target,
            cycles: recovery_cycles,
        });
        // A completed recovery also advances the epoch, so spans opened
        // while the recovery was in flight are flagged at close.
        self.recovery_epoch += 1;
        self.comps[t].stats.recovery_hist.observe(recovery_cycles);
        self.recovering = None;
        self.resolve_intent(target);

        // Reconciliation phase: error virtualization — tell the requester
        // the call failed so it can handle it like any other error — or the
        // kill-requester extension (paper §VII): the requester's exit path
        // cleans the scoped state its window had already exported. A fault
        // here means the requester's view cannot be reconciled: the
        // component is restored, but the only consistent global outcome
        // left is a controlled shutdown.
        if self.recovery_phase_faulted("kernel.recovery.reconcile") {
            self.counters.fb_reconcile_shutdown.inc();
            self.tracer.emit(
                KERNEL_COMP,
                TraceEvent::RecoveryFallback {
                    target,
                    from: action.into(),
                    to: RecoveryAction::ControlledShutdown.into(),
                },
            );
            self.axiom_emit(AxiomEvent::RecoveryFallback {
                comp: target,
                from: action.into(),
                to: RecoveryAction::ControlledShutdown.into(),
            });
            self.counters.controlled_shutdowns.inc();
            self.begin_controlled_shutdown(format!(
                "fault in reconciliation after recovering {}",
                self.comps[t].name
            ));
            return;
        }
        if decision.action == RecoveryAction::RollbackAndKillRequester {
            if let (Endpoint::Process(pid), Some(rs)) = (pending.msg.src, self.rs_ep) {
                self.next_msg_id += 1;
                let payload = P::kill_requester(pid);
                let msg = Message {
                    id: MsgId(self.next_msg_id),
                    src: Endpoint::Kernel,
                    dst: Endpoint::Component(rs),
                    reply_to: None,
                    user_tag: None,
                    seep: payload.seep(),
                    span: None,
                    integrity: 0,
                    payload,
                };
                self.comps[rs as usize].inbox.push_back(msg);
            }
        } else if decision.error_reply {
            self.send_crash_reply(target, pending.msg);
        }
    }

    /// Closes a causal span at a user-reply exit point: emits the
    /// `SpanClose` trace event and observes the end-to-end latency in the
    /// overlap-split histograms. A `None` span (kernel-originated message)
    /// is a no-op.
    fn close_span(&mut self, span: Option<SpanInfo>, ok: bool) {
        let Some(span) = span else { return };
        if !span.record {
            return;
        }
        let crossed = span.epoch_at_open != self.recovery_epoch;
        let latency = self.clock.now().saturating_sub(span.opened_at);
        if crossed {
            self.counters.spans_completed_recovery.inc();
            self.counters.span_latency_recovery.observe(latency);
        } else {
            self.counters.spans_completed_none.inc();
            self.counters.span_latency_none.observe(latency);
        }
        self.tracer.emit(
            KERNEL_COMP,
            TraceEvent::SpanClose {
                span: span.id,
                ok,
                crossed_recovery: crossed,
                latency,
            },
        );
    }

    fn send_crash_reply(&mut self, from: u8, failed: Message<P>) {
        // Transparent-retry interception: if the failed request had an
        // armed watchdog deadline and is safe to re-drive, re-deliver it
        // after a backoff instead of surfacing `E_CRASH`.
        let Some(failed) = self.watchdog_intercept_crash_reply(from, failed) else {
            return;
        };
        match failed.src {
            Endpoint::Process(pid) => {
                let sid = failed.user_tag.expect("user request carries a syscall tag");
                self.tracer.emit(
                    from,
                    TraceEvent::SyscallExit {
                        sid: sid.0,
                        pid: pid.0,
                        ok: false,
                    },
                );
                self.close_span(failed.span, false);
                self.user_replies
                    .push((sid, pid, SysReply::Err(Errno::ECRASH)));
            }
            Endpoint::Component(c) => {
                self.next_msg_id += 1;
                let payload = P::crash_reply();
                let msg = Message {
                    id: MsgId(self.next_msg_id),
                    src: Endpoint::Component(from),
                    dst: failed.src,
                    reply_to: Some(failed.id),
                    user_tag: failed.user_tag,
                    seep: payload.seep(),
                    span: failed.span,
                    integrity: 0,
                    payload,
                };
                self.comps[c as usize].inbox.push_back(msg);
            }
            Endpoint::Kernel => {
                // Kernel notifications get no reply.
            }
        }
    }

    // --- virtual-time watchdog (fail-silent fault tolerance) ---

    /// Whether `msg` qualifies for a watchdog deadline: watchdog on, a
    /// *bounded* request (per its SEEP engraving) that can be error-replied,
    /// addressed to a component.
    fn watchdog_should_arm(&self, msg: &Message<P>) -> bool {
        self.cfg.watchdog.enabled
            && msg.seep.kind == MessageKind::Request
            && msg.seep.reply_possible
            && msg.seep.bounded
            && matches!(msg.dst, Endpoint::Component(_))
    }

    /// Arms a deadline for `msg` in a free preallocated slot. No-op when
    /// the request does not qualify or every slot is busy (unwatched
    /// requests fall back to the RS heartbeat); never allocates.
    fn watchdog_arm(&mut self, msg: &Message<P>, attempt: u8) {
        if !self.watchdog_should_arm(msg) {
            return;
        }
        let Endpoint::Component(dst) = msg.dst else {
            return;
        };
        let Some(i) = self.wd_slots.iter().position(|s| s.is_none()) else {
            return;
        };
        let w = &self.cfg.watchdog;
        // The deadline is derived from the SEEP class: state-modifying
        // requests fan out to other servers and the disk, so they get the
        // longer budget.
        let budget = if msg.seep.class.is_state_modifying() {
            w.deadline_state_modifying
        } else {
            w.deadline
        };
        let now = self.clock.now();
        self.wd_slots[i] = Some(WdSlot {
            msg_id: msg.id.0,
            dst,
            armed_at: now,
            deadline: now + budget,
            attempt,
            epoch_at_arm: self.recovery_epoch,
            state: WdState::Armed,
            msg: None,
        });
        self.wd_armed += 1;
        self.counters.wd_armed_total.inc();
        self.tracer.emit(
            dst,
            TraceEvent::DeadlineArmed {
                target: dst,
                msg_id: msg.id.0,
                deadline: now + budget,
            },
        );
    }

    /// The slot index watching request `msg_id`, if any.
    fn wd_find(&self, msg_id: u64) -> Option<usize> {
        if self.wd_armed == 0 {
            return None;
        }
        self.wd_slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|s| s.msg_id == msg_id))
    }

    /// Disarms slot `i` because the reply arrived. A reply that arrives
    /// after its deadline seals the `Slow` verdict: the component made
    /// progress, just late — nothing to recover.
    fn watchdog_disarm(&mut self, i: usize) {
        let slot = self.wd_slots[i].take().expect("disarming an empty slot");
        self.wd_armed -= 1;
        if self.clock.now() > slot.deadline || matches!(slot.state, WdState::Probing { .. }) {
            self.counters.wd_verdict_slow.inc();
            self.tracer.emit(
                slot.dst,
                TraceEvent::WatchdogVerdict {
                    target: slot.dst,
                    msg_id: slot.msg_id,
                    verdict: VerdictCode::Slow,
                },
            );
            self.axiom_emit(AxiomEvent::WatchdogVerdict {
                comp: slot.dst,
                verdict: VerdictCode::Slow,
                msg_id: slot.msg_id,
            });
        }
    }

    /// A reply failed its integrity check: it is rejected (never delivered)
    /// and the slot is marked for reconciliation at the end of the current
    /// delivery, when the kernel owns the original request again.
    fn watchdog_note_rejected(&mut self, i: usize) {
        let slot = self.wd_slots[i].as_mut().expect("rejecting an empty slot");
        slot.state = WdState::Rejected;
        let (sender, msg_id) = (slot.dst, slot.msg_id);
        self.counters.wd_replies_rejected.inc();
        self.counters.wd_verdict_corrupt.inc();
        self.tracer
            .emit(sender, TraceEvent::ReplyRejected { sender, msg_id });
        self.axiom_emit(AxiomEvent::WatchdogVerdict {
            comp: sender,
            verdict: VerdictCode::CorruptReply,
            msg_id,
        });
    }

    /// Post-handler watchdog bookkeeping for a successfully handled
    /// message: captures `msg` into its still-armed slot — by move, never a
    /// clone — so a lost reply can be re-driven later, then reconciles any
    /// reply rejection recorded during this delivery.
    fn watchdog_after_ok(&mut self, _idx: u8, msg: Message<P>) {
        if !self.cfg.watchdog.enabled || self.wd_armed == 0 {
            return;
        }
        if let Some(i) = self.wd_find(msg.id.0) {
            let slot = self.wd_slots[i].as_mut().expect("slot just found");
            if slot.msg.is_none() {
                slot.msg = Some(msg);
            }
        }
        self.watchdog_drain_rejected();
    }

    /// Reconciles every `Rejected` slot holding a captured request: the
    /// requester gets a transparent retry or a crash reply, and the sender
    /// of the corrupt reply is preemptively restarted — a corrupt reply is
    /// treated as a crash of its sender.
    fn watchdog_drain_rejected(&mut self) {
        loop {
            let Some(i) = self.wd_slots.iter().position(|s| {
                s.as_ref()
                    .is_some_and(|s| s.state == WdState::Rejected && s.msg.is_some())
            }) else {
                return;
            };
            let slot = self.wd_slots[i].take().expect("slot just found");
            self.wd_armed -= 1;
            let sender = slot.dst;
            let msg = slot.msg.expect("drained slots hold a captured request");
            if let Some(failed) =
                self.watchdog_try_retry(sender, msg, slot.attempt, slot.epoch_at_arm)
            {
                // Denied: fall back to error virtualization. The slot is
                // gone, so this cannot re-enter the interception.
                self.send_crash_reply(sender, failed);
            }
            self.watchdog_preemptive_restart(sender);
        }
    }

    /// Treats `target` as crashed without a failing in-flight request (the
    /// corrupt-reply defense): its requester was already reconciled, so the
    /// pending crash carries a kernel-sourced placeholder that can never
    /// trigger a second reply. Recovery routes through the RS conduct and
    /// the existing escalation ladder.
    fn watchdog_preemptive_restart(&mut self, target: u8) {
        let t = target as usize;
        if self.comps[t].status != CompStatus::Alive || self.recovering.is_some() {
            // Already dead or benched, or a conduct is in flight: the
            // ladder is engaged, a second preemption would only amplify.
            return;
        }
        self.comps[t].stats.crashes.inc();
        self.tracer.set_now(self.clock.now());
        self.tracer.emit(target, TraceEvent::Crash { target });
        self.axiom_emit(AxiomEvent::Crash { comp: target });
        self.comps[t].status = CompStatus::Crashed;
        let window_open = self.comps[t].window.is_open();
        self.next_msg_id += 1;
        let payload = P::crash_reply();
        let carrier = Message {
            id: MsgId(self.next_msg_id),
            src: Endpoint::Kernel,
            dst: Endpoint::Component(target),
            reply_to: None,
            user_tag: None,
            seep: payload.seep(),
            span: None,
            integrity: 0,
            payload,
        };
        self.comps[t].crash_info = Some(PendingCrash {
            msg: carrier,
            window_open,
            reply_possible: false,
            scoped_sends: false,
            in_recovery_code: false,
            quiescent: true,
        });
        match self.rs_ep {
            Some(rs) if rs != target => self.notify_rs_crash(rs, target),
            _ => self.execute_recovery(target),
        }
    }

    /// Declares a hung component dead on the watchdog's verdict and hands
    /// the recovery to the RS conduct (the existing escalation ladder),
    /// exactly as the fail-stop crash path does.
    fn watchdog_declare_dead(&mut self, target: u8) {
        let t = target as usize;
        if self.comps[t].status != CompStatus::Hung {
            return;
        }
        self.comps[t].status = CompStatus::Crashed;
        self.comps[t].stats.crashes.inc();
        self.tracer.emit(target, TraceEvent::Crash { target });
        self.axiom_emit(AxiomEvent::Crash { comp: target });
        match self.rs_ep {
            Some(rs) if rs != target => self.notify_rs_crash(rs, target),
            _ => self.execute_recovery(target),
        }
    }

    /// Records the recovery intent and queues a crash notification for
    /// `target` to the Recovery Server.
    fn notify_rs_crash(&mut self, rs: u8, target: u8) {
        self.recovering = Some(target);
        self.note_intent(target, IntentPhase::Notified);
        self.next_msg_id += 1;
        let payload = P::crash_notify(target);
        let notify = Message {
            id: MsgId(self.next_msg_id),
            src: Endpoint::Kernel,
            dst: Endpoint::Component(rs),
            reply_to: None,
            user_tag: None,
            seep: payload.seep(),
            span: None,
            integrity: 0,
            payload,
        };
        self.comps[rs as usize].inbox.push_back(notify);
    }

    /// Services armed deadlines at the current virtual time. Expiries seal
    /// `DeadlineExpired` and start heartbeat probing; probe rounds
    /// distinguish *hung* (the component stopped making progress — declared
    /// dead and recovered) from *slow* (progress but late — the watchdog
    /// keeps waiting and eventually gives up with a `Slow` verdict); a
    /// completed handler whose reply never arrived is a `ReplyLost`,
    /// retried transparently or crash-replied.
    fn service_watchdog(&mut self) {
        if !self.cfg.watchdog.enabled || self.wd_armed == 0 || self.recovering.is_some() {
            // During a recovery conduct only the RS runs; deadlines blocked
            // behind the stall are serviced right after it completes, so a
            // hang storm cannot compound an in-flight recovery.
            return;
        }
        let now = self.clock.now();
        self.tracer.set_now(now);
        for i in 0..self.wd_slots.len() {
            if self.shutdown.is_some() || self.recovering.is_some() {
                // A verdict earlier in this sweep started a conduct (or
                // shut the system down); the remaining slots wait for the
                // next service point.
                return;
            }
            let Some(slot) = self.wd_slots[i].as_ref() else {
                continue;
            };
            match slot.state {
                WdState::Armed if now >= slot.deadline => {
                    let (dst, msg_id, attempt) = (slot.dst, slot.msg_id, slot.attempt);
                    self.counters.wd_expired.inc();
                    self.tracer.emit(
                        dst,
                        TraceEvent::DeadlineExpired {
                            target: dst,
                            msg_id,
                        },
                    );
                    self.axiom_emit(AxiomEvent::DeadlineExpired {
                        comp: dst,
                        msg_id,
                        attempt,
                    });
                    self.watchdog_judge(i, now);
                }
                WdState::Probing { until, .. } if now >= until => self.watchdog_judge(i, now),
                WdState::Rejected => {
                    // Normally reconciled at the end of the delivery that
                    // rejected the reply; reaching here means the sender
                    // also crashed mid-delivery. The crash machinery owns
                    // its recovery — reconcile the requester only.
                    let slot = self.wd_slots[i].take().expect("slot just observed");
                    self.wd_armed -= 1;
                    if let Some(msg) = slot.msg {
                        if let Some(failed) =
                            self.watchdog_try_retry(slot.dst, msg, slot.attempt, slot.epoch_at_arm)
                        {
                            self.send_crash_reply(slot.dst, failed);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Issues the verdict for an expired or probing slot `i` at time `now`.
    fn watchdog_judge(&mut self, i: usize, now: u64) {
        let slot_ref = self.wd_slots[i].as_ref().expect("judging an empty slot");
        let (dst, msg_id) = (slot_ref.dst, slot_ref.msg_id);
        let w = self.cfg.watchdog;
        match self.comps[dst as usize].status {
            CompStatus::Hung => {
                // The heartbeat signal is definitive: the component stopped
                // consuming messages entirely. Verdict without probing.
                let slot = self.wd_slots[i].as_mut().expect("slot just observed");
                slot.state = WdState::Doomed;
                let armed_at = slot.armed_at;
                self.counters.wd_verdict_hung.inc();
                self.counters.wd_detect_latency.observe(now - armed_at);
                self.tracer.emit(
                    dst,
                    TraceEvent::WatchdogVerdict {
                        target: dst,
                        msg_id,
                        verdict: VerdictCode::Hung,
                    },
                );
                self.axiom_emit(AxiomEvent::WatchdogVerdict {
                    comp: dst,
                    verdict: VerdictCode::Hung,
                    msg_id,
                });
                self.watchdog_declare_dead(dst);
            }
            CompStatus::Crashed | CompStatus::Quarantined => {
                // The fail-stop machinery is already on it; its crash reply
                // (or quarantine bounce) resolves this slot through the
                // retry interception.
                self.wd_slots[i].as_mut().expect("slot just observed").state = WdState::Doomed;
            }
            CompStatus::Alive => {
                let progress = self.comps[dst as usize].stats.messages.get();
                let slot = self.wd_slots[i].as_mut().expect("slot just observed");
                match slot.state {
                    WdState::Armed => {
                        // Start the heartbeat-probe round: async completions
                        // (a disk reply still in flight) get one probe
                        // period to surface before any verdict.
                        slot.state = WdState::Probing {
                            until: now + w.probe_period,
                            probes: 0,
                            progress_at: progress,
                        };
                        self.counters.wd_probes.inc();
                        self.tracer.emit(
                            dst,
                            TraceEvent::WatchdogProbe {
                                target: dst,
                                msg_id,
                            },
                        );
                    }
                    WdState::Probing { probes, .. } => {
                        if slot.msg.is_some() {
                            // The handler completed long ago and a full
                            // probe period passed with no reply on the
                            // wire: the reply is lost. Re-drive or surface.
                            let slot = self.wd_slots[i].take().expect("slot just observed");
                            self.wd_armed -= 1;
                            self.counters.wd_verdict_reply_lost.inc();
                            self.tracer.emit(
                                dst,
                                TraceEvent::WatchdogVerdict {
                                    target: dst,
                                    msg_id,
                                    verdict: VerdictCode::ReplyLost,
                                },
                            );
                            self.axiom_emit(AxiomEvent::WatchdogVerdict {
                                comp: dst,
                                verdict: VerdictCode::ReplyLost,
                                msg_id,
                            });
                            let msg = slot.msg.expect("reply-lost slots hold the request");
                            if let Some(failed) =
                                self.watchdog_try_retry(dst, msg, slot.attempt, slot.epoch_at_arm)
                            {
                                self.send_crash_reply(dst, failed);
                            }
                        } else if probes + 1 >= w.max_probes {
                            // Still in the component's queue after every
                            // probe round: the system is making progress,
                            // just slowly. Stop watching.
                            let slot = self.wd_slots[i].take().expect("slot just observed");
                            self.wd_armed -= 1;
                            self.counters.wd_verdict_slow.inc();
                            self.tracer.emit(
                                dst,
                                TraceEvent::WatchdogVerdict {
                                    target: dst,
                                    msg_id: slot.msg_id,
                                    verdict: VerdictCode::Slow,
                                },
                            );
                            self.axiom_emit(AxiomEvent::WatchdogVerdict {
                                comp: dst,
                                verdict: VerdictCode::Slow,
                                msg_id: slot.msg_id,
                            });
                        } else {
                            slot.state = WdState::Probing {
                                until: now + w.probe_period,
                                probes: probes + 1,
                                progress_at: progress,
                            };
                            self.counters.wd_probes.inc();
                            self.tracer.emit(
                                dst,
                                TraceEvent::WatchdogProbe {
                                    target: dst,
                                    msg_id,
                                },
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Decides whether a failed armed request may be re-driven, sealing the
    /// decision into the axiom either way. Consumes the message when the
    /// retry is granted (parked in the retry queue until its backoff
    /// elapses); hands it back when denied so the caller surfaces the
    /// failure through error virtualization.
    fn watchdog_try_retry(
        &mut self,
        from: u8,
        failed: Message<P>,
        attempt: u8,
        epoch_at_arm: u64,
    ) -> Option<Message<P>> {
        let w = self.cfg.watchdog;
        // Idempotence comes from the SEEP classification: non-state-
        // modifying requests re-drive transparently; state-modifying ones
        // only when the recovery epoch advanced since arming — their
        // partial effects were rolled back or restarted away, so a re-drive
        // cannot duplicate them.
        let idempotent = !failed.seep.class.is_state_modifying();
        let effects_undone = self.recovery_epoch > epoch_at_arm;
        let budget_left = (attempt as u32) < w.max_retries;
        let target_usable = self.comps[from as usize].status != CompStatus::Quarantined
            && self.shutdown.is_none()
            && self.shutdown_pending.is_none();
        let granted = budget_left && target_usable && (idempotent || effects_undone);
        let backoff = if granted {
            self.watchdog_backoff(failed.id.0, attempt)
        } else {
            0
        };
        self.axiom_emit(AxiomEvent::RetryDecision {
            comp: from,
            msg_id: failed.id.0,
            attempt,
            granted,
            backoff: backoff.min(u32::MAX as u64) as u32,
        });
        if granted {
            self.counters.retry_granted.inc();
            self.tracer.emit(
                from,
                TraceEvent::RetryScheduled {
                    target: from,
                    msg_id: failed.id.0,
                    attempt,
                    backoff,
                },
            );
            self.retry_seq += 1;
            let at = self.clock.now() + backoff;
            self.retry_wait
                .insert((at, self.retry_seq), (attempt + 1, failed));
            None
        } else {
            self.counters.retry_denied.inc();
            if !budget_left {
                self.counters.retry_exhausted.inc();
                self.tracer.emit(
                    from,
                    TraceEvent::RetryExhausted {
                        target: from,
                        msg_id: failed.id.0,
                    },
                );
            }
            Some(failed)
        }
    }

    /// Deterministic exponential backoff with seeded jitter: attempt `n`
    /// waits `backoff_base << n` plus an FNV-derived jitter of up to a
    /// quarter base, so identical configurations schedule byte-identical
    /// retries and a retry storm never synchronizes.
    fn watchdog_backoff(&self, msg_id: u64, attempt: u8) -> u64 {
        let w = &self.cfg.watchdog;
        let base = w
            .backoff_base
            .saturating_mul(1u64 << attempt.min(16) as u32);
        let h = osiris_axiom::fnv1a(
            osiris_axiom::fnv1a(w.jitter_seed, &msg_id.to_le_bytes()),
            &[attempt],
        );
        base + h % (w.backoff_base / 4).max(1)
    }

    /// Crash-reply interception: when the failed request had an armed
    /// deadline, consult the retry policy before surfacing `E_CRASH`.
    /// Returns the message back when it must still be crash-replied.
    fn watchdog_intercept_crash_reply(
        &mut self,
        from: u8,
        failed: Message<P>,
    ) -> Option<Message<P>> {
        if !self.cfg.watchdog.enabled || self.wd_armed == 0 {
            return Some(failed);
        }
        let Some(i) = self.wd_find(failed.id.0) else {
            return Some(failed);
        };
        let slot = self.wd_slots[i].take().expect("slot just found");
        self.wd_armed -= 1;
        self.watchdog_try_retry(from, failed, slot.attempt, slot.epoch_at_arm)
    }

    fn route_messages(&mut self, out: Vec<Message<P>>) {
        for msg in out {
            // Watchdog bookkeeping on replies: verify the integrity stamp
            // sealed at send time, and disarm the deadline of the request
            // being answered. A digest mismatch rejects the reply outright.
            if self.cfg.watchdog.enabled {
                if let Some(rt) = msg.reply_to {
                    if let Some(i) = self.wd_find(rt.0) {
                        if msg.integrity != msg.payload.digest() {
                            self.watchdog_note_rejected(i);
                            continue;
                        }
                        self.watchdog_disarm(i);
                    }
                }
            }
            match msg.dst {
                Endpoint::Component(c) => {
                    self.watchdog_arm(&msg, 0);
                    self.comps[c as usize].inbox.push_back(msg);
                }
                Endpoint::Process(pid) => {
                    let reply = msg
                        .payload
                        .as_user_reply()
                        .expect("messages to processes must be user replies");
                    match msg.user_tag {
                        Some(sid) => {
                            let ok = !matches!(reply, SysReply::Err(_));
                            self.tracer.emit(
                                match msg.src {
                                    Endpoint::Component(c) => c,
                                    _ => KERNEL_COMP,
                                },
                                TraceEvent::SyscallExit {
                                    sid: sid.0,
                                    pid: pid.0,
                                    ok,
                                },
                            );
                            self.close_span(msg.span, ok);
                            self.user_replies.push((sid, pid, reply));
                        }
                        // An untagged message to a process is a kill event:
                        // PM decided to terminate it outside any syscall.
                        None => self.kill_events.push(pid),
                    }
                }
                Endpoint::Kernel => panic!("components cannot message the kernel directly"),
            }
        }
    }

    fn register_timers(&mut self, owner: u8, timers: Vec<(u64, Option<SpanInfo>, P)>) {
        for (delay, span, payload) in timers {
            self.timer_seq += 1;
            let at = self.clock.now() + delay;
            self.timers
                .insert((at, self.timer_seq), (owner, span, payload));
        }
    }

    /// Per-component reports for the evaluation tables: views assembled
    /// from the metrics registry (live counters and histograms) plus the
    /// window and heap state the registry mirrors.
    pub fn component_reports(&self) -> Vec<ComponentReport> {
        self.sync_registry();
        self.comps
            .iter()
            .enumerate()
            .map(|(i, c)| ComponentReport {
                name: c.name,
                endpoint: i as u8,
                window: *c.window.stats(),
                cycles: c.stats.cycles.get(),
                messages: c.stats.messages.get(),
                heap_bytes: c.stats.heap_bytes.get() as usize,
                clone_bytes: c.stats.clone_bytes.get() as usize,
                clone_dedup_bytes: c.stats.clone_dedup_bytes.get() as usize,
                undo_window_peak_bytes: c.stats.undo_window_peak_bytes.get() as usize,
                recovery_latency: c.stats.recovery_hist.summary(),
                window_cycles: c.stats.window_hist.summary(),
                undo_window_bytes: c.stats.undo_hist.summary(),
                writes: c.stats.writes.get(),
                undo_appends: c.stats.undo_appends.get(),
                coalesced_writes: c.stats.coalesced_writes.get(),
                crashes: c.stats.crashes.get(),
                recoveries: c.stats.recoveries.get(),
            })
            .collect()
    }

    /// Read-only view of a component's heap, for audits and tests.
    pub fn heap_of(&self, name: &str) -> Option<&Heap> {
        self.comps.iter().find(|c| c.name == name).map(|c| &c.heap)
    }

    /// Collects audit facts from every component (cross-component
    /// consistency checks are performed by the OS assembly).
    pub fn audit_facts(&self) -> Vec<(&'static str, String, u64)> {
        let mut out = Vec::new();
        for c in &self.comps {
            for (k, v) in c.server.audit_facts(&c.heap) {
                out.push((c.name, k, v));
            }
        }
        out
    }

    /// Whether any component is currently hung (awaiting heartbeat
    /// detection).
    pub fn any_hung(&self) -> bool {
        self.comps.iter().any(|c| c.status == CompStatus::Hung)
    }

    /// Endpoints currently quarantined by the escalation ladder.
    pub fn quarantined(&self) -> Vec<u8> {
        self.comps
            .iter()
            .enumerate()
            .filter(|(_, c)| c.status == CompStatus::Quarantined)
            .map(|(i, _)| i as u8)
            .collect()
    }

    /// Whether a recovery is currently stalling the system.
    pub fn recovering(&self) -> bool {
        self.recovering.is_some()
    }

    /// True if every inbox of every runnable component is empty.
    pub fn quiescent(&self) -> bool {
        self.comps
            .iter()
            .all(|c| c.status != CompStatus::Alive || c.inbox.is_empty())
    }

    /// The externally visible counters of the content-addressed clone-pool
    /// store, as one comparable value. Two kernels whose stores evolved
    /// through the same operation sequence have equal fingerprints.
    pub fn cas_fingerprint(&self) -> CasFingerprint {
        CasFingerprint {
            chunk_count: self.cas.chunk_count(),
            resident_bytes: self.cas.resident_bytes(),
            dedup_hits: self.cas.dedup_hits(),
            inserts: self.cas.inserts(),
        }
    }
}

/// The content-addressed store's externally visible counters at one
/// instant, used to check that a freshly booted fork reproduced its donor's
/// boot-time store exactly (the fault-free-prefix invariant: the kernel
/// only touches the store at `init_components` and during recovery, and
/// snapshots are taken on fault-free prefixes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CasFingerprint {
    /// Chunks resident in the store.
    pub chunk_count: usize,
    /// Deduplicated resident bytes.
    pub resident_bytes: usize,
    /// Insertions absorbed by an already-resident chunk.
    pub dedup_hits: u64,
    /// Total insert attempts (hits plus misses).
    pub inserts: u64,
}

/// Per-component slice of a [`KernelSnapshot`]: the heap as a CAS chunk
/// manifest (O(dirty) against `prev` via epoch sharing), the recovery
/// window, the inbox, and the digests needed to validate adoption targets.
///
/// The live server object is deliberately *not* captured: servers hold only
/// configuration and heap handles assigned deterministically at init, so
/// any same-config booted kernel already owns an identical copy. All
/// mutable state lives in the heap.
pub struct CompSnapshot<P: Protocol> {
    name: &'static str,
    heap_manifest: HeapImage,
    heap_write_epoch: u64,
    heap_stats: HeapStats,
    journal_reuse: u64,
    journal_capacity: usize,
    window: RecoveryWindow,
    inbox: VecDeque<Message<P>>,
    /// Heap-id-independent digest of the donor's pristine clone image.
    /// Adoption requires the adopting kernel's own pristine image to match:
    /// a recovery executed after adoption must restore the same bytes the
    /// donor's would have.
    pristine_digest: u64,
}

/// A quiescent, fault-free kernel captured for snapshot-fork execution.
///
/// Capture is O(dirty): heap payloads are shared with the caller's
/// [`ChunkStore`] and, when a `prev` snapshot of the same kernel is
/// supplied, epoch-equal objects reshare the previous manifest's chunks
/// without rehashing. Everything else (clock, timers, inboxes, axiom,
/// control state, metrics, trace ring, telemetry series) is a plain value
/// copy, small by construction.
///
/// A kernel that adopts this snapshot ([`Kernel::adopt_snapshot`]) becomes
/// byte-equivalent to the donor at capture time: every subsequent export
/// (metrics, axiom bytes, trace text, timeseries) is identical to what the
/// donor would have produced from the same point.
pub struct KernelSnapshot<P: Protocol> {
    clock: VirtualClock,
    comps: Vec<CompSnapshot<P>>,
    timers: BTreeMap<(u64, u64), (u8, Option<SpanInfo>, P)>,
    timer_seq: u64,
    next_msg_id: u64,
    next_span_id: u64,
    recovery_epoch: u64,
    rr_cursor: usize,
    axiom: AxiomLog,
    control: ControlState,
    metrics: MetricsSnapshot,
    tracer: TracerState,
    timeseries: TimeseriesState,
    cas: CasFingerprint,
}

impl<P: Protocol> KernelSnapshot<P> {
    /// Virtual time at capture.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// The donor's clone-pool store fingerprint at capture time.
    pub fn cas_fingerprint(&self) -> CasFingerprint {
        self.cas
    }

    /// Number of captured components.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Total manifest bytes across all captured heaps (shared chunks are
    /// counted once per referencing manifest — this is the logical capture
    /// size, not the deduplicated resident cost).
    pub fn manifest_bytes(&self) -> usize {
        self.comps.iter().map(|c| c.heap_manifest.bytes()).sum()
    }

    /// Releases every captured manifest's chunk references back to `store`.
    /// Call when discarding a snapshot whose store outlives it; dropping
    /// the snapshot without releasing leaks resident chunks.
    pub fn release(self, store: &mut ChunkStore) {
        for c in self.comps {
            c.heap_manifest.release(store);
        }
    }
}

impl<P: Protocol + Clone> Kernel<P> {
    /// Captures the kernel into a [`KernelSnapshot`] whose heap payloads
    /// live in `store`. Passing the previous snapshot of the *same* kernel
    /// as `prev` makes the capture O(dirty): epoch-equal objects reshare
    /// the previous manifest's chunks.
    ///
    /// # Panics
    ///
    /// Panics unless the kernel is quiescent and fault-free: initialized,
    /// no recovery in flight, no shutdown decided, no pending crash, no
    /// undrained user replies or kill events, every component `Alive` with
    /// a closed recovery window (empty undo log) and a pristine image.
    pub fn snapshot_into(
        &self,
        store: &mut ChunkStore,
        prev: Option<&KernelSnapshot<P>>,
    ) -> KernelSnapshot<P> {
        assert!(self.initialized, "snapshot() before init_components()");
        assert!(self.recovering.is_none(), "snapshot during recovery");
        assert!(
            self.shutdown.is_none() && self.shutdown_pending.is_none(),
            "snapshot after shutdown"
        );
        assert!(
            self.user_replies.is_empty(),
            "snapshot with undrained user replies"
        );
        assert!(
            self.kill_events.is_empty(),
            "snapshot with undrained kill events"
        );
        assert_eq!(self.wd_armed, 0, "snapshot with armed watchdog deadlines");
        assert!(
            self.retry_wait.is_empty(),
            "snapshot with parked watchdog retries"
        );
        let comps = self
            .comps
            .iter()
            .enumerate()
            .map(|(i, c)| {
                assert!(
                    c.status == CompStatus::Alive,
                    "snapshot with non-Alive component {}",
                    c.name
                );
                assert!(
                    c.crash_info.is_none(),
                    "snapshot with a pending crash in {}",
                    c.name
                );
                assert_eq!(
                    c.heap.log_len(),
                    0,
                    "snapshot with an open recovery window in {}",
                    c.name
                );
                let prev_manifest = prev.and_then(|p| p.comps.get(i)).map(|p| &p.heap_manifest);
                let (journal_reuse, journal_capacity) = c.heap.journal_warmth();
                CompSnapshot {
                    name: c.name,
                    heap_manifest: c.heap.clone_image(store, prev_manifest),
                    heap_write_epoch: c.heap.write_epoch(),
                    heap_stats: *c.heap.stats(),
                    journal_reuse,
                    journal_capacity,
                    window: c.window.clone(),
                    inbox: c.inbox.clone(),
                    pristine_digest: c
                        .pristine_image
                        .as_ref()
                        .expect("snapshot without a pristine image")
                        .content_digest(),
                }
            })
            .collect();
        KernelSnapshot {
            clock: self.clock,
            comps,
            timers: self.timers.clone(),
            timer_seq: self.timer_seq,
            next_msg_id: self.next_msg_id,
            next_span_id: self.next_span_id,
            recovery_epoch: self.recovery_epoch,
            rr_cursor: self.rr_cursor,
            axiom: self.axiom.clone(),
            control: self.control.clone(),
            metrics: self.metrics.snapshot(),
            tracer: self.tracer.export_state(),
            timeseries: self.sampler.export_state(),
            cas: self.cas_fingerprint(),
        }
    }

    /// Whether [`Kernel::adopt_snapshot`] can re-target this kernel at
    /// `snap` without violating its invariants: same topology, every
    /// component `Alive` with a closed window, no recovery/shutdown in
    /// flight, and every pristine image byte-equal to the donor's. Used by
    /// the campaign forge to decide between re-adopting a worker's kernel
    /// and booting a fresh fork.
    pub fn can_adopt(&self, snap: &KernelSnapshot<P>) -> bool {
        self.initialized
            && self.recovering.is_none()
            && self.shutdown.is_none()
            && self.shutdown_pending.is_none()
            && self.comps.len() == snap.comps.len()
            && self.comps.iter().zip(&snap.comps).all(|(c, s)| {
                c.name == s.name
                    && c.status == CompStatus::Alive
                    && c.crash_info.is_none()
                    && c.heap.log_len() == 0
                    && c.pristine_image
                        .as_ref()
                        .is_some_and(|i| i.content_digest() == s.pristine_digest)
            })
    }

    /// Re-targets this kernel at `snap`: restores every heap from its
    /// manifest (O(dirty) — objects whose parent-line epoch matches the
    /// manifest are not touched), then overwrites the scheduler state,
    /// axiom, control state, metrics, trace ring and telemetry series with
    /// the donor's. Any armed fault hook is replaced with [`NoFaults`].
    ///
    /// After adoption the kernel is byte-equivalent to the donor at capture
    /// time. Returns the aggregate restore cost across all heaps.
    ///
    /// # Panics
    ///
    /// Panics if the topology differs, a pristine image diverges from the
    /// donor's, a recovery window is open, or a manifest fails integrity
    /// verification. Call [`Kernel::can_adopt`] first when adopting into a
    /// kernel that has run arbitrary work since boot.
    pub fn adopt_snapshot(&mut self, snap: &KernelSnapshot<P>, store: &ChunkStore) -> RestoreStats {
        assert!(
            self.initialized,
            "adopt_snapshot() before init_components()"
        );
        assert_eq!(
            self.comps.len(),
            snap.comps.len(),
            "adopt_snapshot() across different topologies"
        );
        let mut total = RestoreStats::default();
        for (c, s) in self.comps.iter_mut().zip(&snap.comps) {
            assert_eq!(c.name, s.name, "adopt_snapshot() component order mismatch");
            let pristine = c
                .pristine_image
                .as_ref()
                .expect("adopt_snapshot() without a pristine image");
            assert_eq!(
                pristine.content_digest(),
                s.pristine_digest,
                "pristine clone image of {} diverged from the snapshot donor's",
                c.name
            );
            assert_eq!(
                c.heap.log_len(),
                0,
                "adopt_snapshot() with an open recovery window in {}",
                c.name
            );
            let r = c
                .heap
                .adopt_image(&s.heap_manifest, store, s.heap_write_epoch)
                .expect("snapshot manifest failed integrity verification");
            total.clean_objects += r.clean_objects;
            total.dirty_objects += r.dirty_objects;
            total.clean_chunks += r.clean_chunks;
            total.dirty_chunks += r.dirty_chunks;
            total.bytes_restored += r.bytes_restored;
            c.heap.set_stats(s.heap_stats);
            c.heap
                .restore_journal_warmth(s.journal_reuse, s.journal_capacity);
            c.window = s.window.clone();
            c.inbox = s.inbox.clone();
            c.status = CompStatus::Alive;
            c.crash_info = None;
        }
        self.clock = snap.clock;
        self.timers = snap.timers.clone();
        self.timer_seq = snap.timer_seq;
        self.next_msg_id = snap.next_msg_id;
        self.next_span_id = snap.next_span_id;
        self.recovery_epoch = snap.recovery_epoch;
        self.rr_cursor = snap.rr_cursor;
        self.recovering = None;
        self.shutdown = None;
        self.shutdown_pending = None;
        self.user_replies.clear();
        self.kill_events.clear();
        for s in &mut self.wd_slots {
            *s = None;
        }
        self.wd_armed = 0;
        self.retry_wait.clear();
        self.hook = Box::new(NoFaults);
        self.axiom = snap.axiom.clone();
        self.control = snap.control.clone();
        self.metrics.restore_from(&snap.metrics);
        self.tracer.restore_state(&snap.tracer);
        self.sampler.restore_state(&snap.timeseries);
        total
    }
}
