//! The OSIRIS microkernel substrate: deterministic message passing,
//! event-driven components, crash detection and recovery mechanics, plus the
//! user-process host that runs workload programs against a simulated OS.
//!
//! This crate reproduces the role MINIX 3 plays in the OSIRIS prototype
//! (paper §V): a small trusted kernel providing scheduling and message
//! passing, with the operating system proper implemented as fault-isolated
//! user-space servers. Fault isolation here is enforced by Rust ownership —
//! components hold no references to each other and interact exclusively
//! through kernel messages — which gives the same no-fault-propagation
//! property the paper obtains from MMU isolation.
//!
//! The crate is deliberately generic: [`Kernel`] works with any protocol
//! type implementing [`Protocol`], and [`Host`] with any [`OsEngine`]. The
//! `osiris-servers` crate assembles the five core servers into the full OS;
//! `osiris-monolith` implements the same ABI without compartmentalization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
mod clock;
mod component;
mod host;
mod kernel;
mod message;
mod metrics;

pub use clock::{CostModel, VirtualClock};
pub use component::{
    Ctx, FaultEffect, FaultHook, InjectedCrash, InjectedHang, IntentPhase, NoFaults, PrivOp, Probe,
    Server, SiteKind,
};
pub use host::{ForkFn, Host, HostConfig, OsEngine, ProgramFn, ProgramRegistry, RunOutcome, Sys};
pub use kernel::{
    CasFingerprint, CompSnapshot, Instrumentation, Kernel, KernelConfig, KernelSnapshot,
    WatchdogConfig,
};
pub use message::{Endpoint, Message, MsgId, Protocol, ReturnPath, SpanInfo, SyscallId};
pub use metrics::{ComponentReport, KernelMetrics, ShutdownKind};

use std::sync::Once;

/// Installs a process-wide panic hook that silences the panics used as
/// control flow by the simulator (injected faults and process exits), while
/// delegating genuine panics to the previous hook.
///
/// Fault-injection campaigns unwind thousands of injected crashes; without
/// this hook every one of them would print a backtrace banner.
pub fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.is::<InjectedCrash>()
                || payload.is::<InjectedHang>()
                || payload.is::<crate::host::ProcExit>()
            {
                return;
            }
            previous(info);
        }));
    });
}
