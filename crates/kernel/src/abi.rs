//! The user-visible system-call ABI.
//!
//! Both the compartmentalized OSIRIS OS (`osiris-servers`) and the monolithic
//! baseline (`osiris-monolith`) implement exactly this surface, so workloads
//! run unmodified against either — the Table IV comparison isolates the
//! architectural difference, not the API.

use std::fmt;

/// Process identifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl Pid {
    /// The init process.
    pub const INIT: Pid = Pid(1);
}

/// File descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// POSIX-flavoured error numbers, plus OSIRIS' `E_CRASH`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Errno {
    /// Operation not permitted.
    EPERM,
    /// No such file or directory.
    ENOENT,
    /// No such process.
    ESRCH,
    /// I/O error.
    EIO,
    /// Bad file descriptor.
    EBADF,
    /// No child processes.
    ECHILD,
    /// Resource temporarily unavailable.
    EAGAIN,
    /// Out of memory.
    ENOMEM,
    /// File or resource busy.
    EBUSY,
    /// File exists.
    EEXIST,
    /// Not a directory.
    ENOTDIR,
    /// Is a directory.
    EISDIR,
    /// Invalid argument.
    EINVAL,
    /// Too many open files.
    EMFILE,
    /// No space left on device.
    ENOSPC,
    /// Broken pipe.
    EPIPE,
    /// Function not implemented.
    ENOSYS,
    /// Key not found in the data store.
    ENOKEY,
    /// The servicing OS component crashed and was recovered; the request was
    /// discarded (error virtualization, paper §IV-C). Callers handle this
    /// like any other failure.
    ECRASH,
    /// The process was killed while the call was in progress.
    EKILLED,
    /// The system is shutting down.
    ESHUTDOWN,
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

impl std::error::Error for Errno {}

/// Flags for [`Syscall::Open`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
    /// Position writes at end of file.
    pub append: bool,
}

impl OpenFlags {
    /// Read-only open.
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        create: false,
        truncate: false,
        append: false,
    };
    /// Write-only, create + truncate (like `O_WRONLY|O_CREAT|O_TRUNC`).
    pub const CREATE: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: true,
        truncate: true,
        append: false,
    };
    /// Read-write, create if absent.
    pub const RDWR_CREATE: OpenFlags = OpenFlags {
        read: true,
        write: true,
        create: true,
        truncate: false,
        append: false,
    };
    /// Write-only append, create if absent.
    pub const APPEND: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: true,
        truncate: false,
        append: true,
    };
}

/// Seek origin for [`Syscall::Seek`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeekFrom {
    /// Absolute offset.
    Start(u64),
    /// Relative to current position.
    Current(i64),
    /// Relative to end of file.
    End(i64),
}

/// Signal numbers (a small, MINIX-flavoured subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Signal {
    /// Termination request; default action kills the process.
    SigTerm,
    /// Kill (cannot be masked).
    SigKill,
    /// User-defined signal 1 (maskable, recordable).
    SigUsr1,
    /// User-defined signal 2 (maskable, recordable).
    SigUsr2,
}

/// Metadata returned by [`Syscall::Stat`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileStat {
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Whether the path names a directory.
    pub is_dir: bool,
    /// Link count (for files: 1; directories: entries + 2, loosely).
    pub nlink: u32,
}

/// One system call, as submitted by a user process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Syscall {
    // --- Process management (PM) ---
    /// Create a new process running the registered program `prog`.
    /// A combined fork+exec, which is how workload programs spawn children.
    Spawn {
        /// Registered program name.
        prog: String,
        /// Program arguments.
        args: Vec<String>,
    },
    /// Duplicate the calling process; the child runs a closure provided to
    /// the host (see `Sys::fork_run`).
    Fork,
    /// Replace the calling process image with program `prog`.
    Exec {
        /// Registered program name.
        prog: String,
        /// Program arguments.
        args: Vec<String>,
    },
    /// Terminate the calling process with `code`. One-way: no reply.
    Exit {
        /// Exit status.
        code: i32,
    },
    /// Wait for the given child to exit (blocks).
    WaitPid {
        /// Child process id.
        pid: Pid,
    },
    /// Wait for any child to exit (blocks).
    WaitAny,
    /// Send `sig` to process `pid`.
    Kill {
        /// Target process.
        pid: Pid,
        /// Signal to deliver.
        sig: Signal,
    },
    /// Get the caller's process id.
    GetPid,
    /// Get the caller's parent process id.
    GetPPid,
    /// Set the caller's signal mask for `sig`.
    SigMask {
        /// Signal to (un)mask.
        sig: Signal,
        /// Whether the signal becomes masked.
        masked: bool,
    },
    /// Fetch and clear the caller's pending-signal set.
    SigPending,
    /// Block for `ticks` of virtual time.
    Sleep {
        /// Duration in virtual ticks.
        ticks: u64,
    },
    // --- Virtual memory (VM) ---
    /// Grow (or shrink, if negative) the caller's data segment by `pages`.
    Brk {
        /// Signed page delta.
        pages: i64,
    },
    /// Map `pages` fresh pages; returns a mapping id.
    Mmap {
        /// Number of pages.
        pages: u64,
    },
    /// Unmap a mapping returned by `Mmap`.
    Munmap {
        /// Mapping id.
        id: u64,
    },
    /// Query the caller's resident page count.
    VmStat,
    // --- File system (VFS) ---
    /// Open `path` with `flags`; returns an [`Fd`].
    Open {
        /// Absolute path.
        path: String,
        /// Open mode.
        flags: OpenFlags,
    },
    /// Close an open descriptor.
    Close {
        /// Descriptor to close.
        fd: Fd,
    },
    /// Read up to `len` bytes from `fd`. Blocks on an empty pipe.
    Read {
        /// Source descriptor.
        fd: Fd,
        /// Maximum bytes to read.
        len: u32,
    },
    /// Write `bytes` to `fd`.
    Write {
        /// Destination descriptor.
        fd: Fd,
        /// Payload.
        bytes: Vec<u8>,
    },
    /// Reposition the file offset of `fd`.
    Seek {
        /// Descriptor.
        fd: Fd,
        /// Target position.
        from: SeekFrom,
    },
    /// Remove the file at `path`.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// Create a directory at `path`.
    Mkdir {
        /// Absolute path.
        path: String,
    },
    /// List the entries of the directory at `path`.
    ReadDir {
        /// Absolute path.
        path: String,
    },
    /// Stat the file or directory at `path`.
    Stat {
        /// Absolute path.
        path: String,
    },
    /// Rename a file.
    Rename {
        /// Existing path.
        from: String,
        /// New path.
        to: String,
    },
    /// Create a pipe; returns `(read_fd, write_fd)`.
    Pipe,
    /// Duplicate a descriptor.
    Dup {
        /// Descriptor to duplicate.
        fd: Fd,
    },
    /// Flush a file's cached blocks to the disk driver.
    Fsync {
        /// Descriptor to flush.
        fd: Fd,
    },
    // --- Data store (DS) ---
    /// Store `value` under `key`.
    DsPut {
        /// Key.
        key: String,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Retrieve the value under `key`.
    DsGet {
        /// Key.
        key: String,
    },
    /// Delete `key`.
    DsDel {
        /// Key.
        key: String,
    },
    /// List all keys with the given prefix.
    DsList {
        /// Key prefix ("" for all).
        prefix: String,
    },
}

impl Syscall {
    /// Short name for profiling and fault-site attribution.
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Spawn { .. } => "spawn",
            Syscall::Fork => "fork",
            Syscall::Exec { .. } => "exec",
            Syscall::Exit { .. } => "exit",
            Syscall::WaitPid { .. } => "waitpid",
            Syscall::WaitAny => "waitany",
            Syscall::Kill { .. } => "kill",
            Syscall::GetPid => "getpid",
            Syscall::GetPPid => "getppid",
            Syscall::SigMask { .. } => "sigmask",
            Syscall::SigPending => "sigpending",
            Syscall::Sleep { .. } => "sleep",
            Syscall::Brk { .. } => "brk",
            Syscall::Mmap { .. } => "mmap",
            Syscall::Munmap { .. } => "munmap",
            Syscall::VmStat => "vmstat",
            Syscall::Open { .. } => "open",
            Syscall::Close { .. } => "close",
            Syscall::Read { .. } => "read",
            Syscall::Write { .. } => "write",
            Syscall::Seek { .. } => "seek",
            Syscall::Unlink { .. } => "unlink",
            Syscall::Mkdir { .. } => "mkdir",
            Syscall::ReadDir { .. } => "readdir",
            Syscall::Stat { .. } => "stat",
            Syscall::Rename { .. } => "rename",
            Syscall::Pipe => "pipe",
            Syscall::Dup { .. } => "dup",
            Syscall::Fsync { .. } => "fsync",
            Syscall::DsPut { .. } => "ds_put",
            Syscall::DsGet { .. } => "ds_get",
            Syscall::DsDel { .. } => "ds_del",
            Syscall::DsList { .. } => "ds_list",
        }
    }
}

/// Reply to a [`Syscall`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SysReply {
    /// Success with no payload.
    Ok,
    /// Success with an integer.
    Val(i64),
    /// A process id (spawn/fork/getpid…).
    Proc(Pid),
    /// A descriptor (open/dup).
    Desc(Fd),
    /// Two descriptors (pipe: read end, write end).
    TwoDesc(Fd, Fd),
    /// Bytes (read / ds_get).
    Data(Vec<u8>),
    /// Directory entries or key list.
    Names(Vec<String>),
    /// Stat result.
    StatInfo(FileStat),
    /// A child exited with this status (waitpid).
    Exited(Pid, i32),
    /// Pending signals (sigpending).
    Signals(Vec<Signal>),
    /// Failure.
    Err(Errno),
}

impl SysReply {
    /// Converts the reply into a `Result`, mapping `Err` variants.
    pub fn into_result(self) -> Result<SysReply, Errno> {
        match self {
            SysReply::Err(e) => Err(e),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_display_and_error_trait() {
        let e: Box<dyn std::error::Error> = Box::new(Errno::ECRASH);
        assert_eq!(e.to_string(), "ECRASH");
    }

    #[test]
    fn reply_into_result() {
        assert_eq!(SysReply::Ok.into_result(), Ok(SysReply::Ok));
        assert_eq!(
            SysReply::Err(Errno::ENOENT).into_result(),
            Err(Errno::ENOENT)
        );
    }

    #[test]
    fn syscall_names_are_stable() {
        assert_eq!(Syscall::GetPid.name(), "getpid");
        assert_eq!(Syscall::Pipe.name(), "pipe");
        assert_eq!(
            Syscall::Open {
                path: "/x".into(),
                flags: OpenFlags::RDONLY
            }
            .name(),
            "open"
        );
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // guards the preset definitions
    fn open_flag_presets() {
        assert!(OpenFlags::RDONLY.read && !OpenFlags::RDONLY.write);
        assert!(OpenFlags::CREATE.create && OpenFlags::CREATE.truncate);
        assert!(OpenFlags::APPEND.append);
    }
}
