//! The event-driven component model: the [`Server`] trait, the handler
//! context [`Ctx`], and fault-injection probes.
//!
//! OSIRIS components follow the event-driven programming model of paper
//! §IV-A: after initialization they sit in a request-processing loop,
//! receiving one message at a time. Here the kernel *is* that loop: it opens
//! the component's recovery window, invokes [`Server::handle`] for the
//! received message, and completes the window when the handler returns.
//! Handlers never block — multi-step interactions store continuations in the
//! component's checkpointed heap and resume when the async reply arrives.

use std::fmt;

use osiris_checkpoint::Heap;
use osiris_core::{MessageKind, RecoveryPolicy, RecoveryWindow};

use crate::clock::CostModel;
use crate::message::{Endpoint, Message, MsgId, Protocol, ReturnPath, SpanInfo};

/// What kind of instrumentation site a probe marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A plain basic-block marker.
    Block,
    /// A site producing a value that a fault may perturb.
    Value,
    /// A site evaluating a branch condition that a fault may flip.
    Branch,
}

/// The effect an armed fault has at a probe site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEffect {
    /// No fault fires here.
    None,
    /// Fail-stop: the component crashes immediately (e.g. a NULL-pointer
    /// dereference).
    Panic,
    /// The component hangs; detectable only via heartbeats.
    Hang,
    /// Fail-silent: the branch condition is negated.
    Flip,
    /// Fail-silent: the value is XORed with the given mask.
    Perturb(u64),
    /// Fail-silent: the handler completes correctly but charges
    /// `factor` × `CostModel::stall_quantum` extra cycles — a slow-but-live
    /// component the watchdog must classify as *slow*, not hung.
    Stall(u32),
    /// Fail-silent: the handler completes but its first outbound reply is
    /// dropped in flight; the requester never hears back.
    DropReply,
    /// Fail-silent: the handler completes but its first outbound reply's
    /// integrity seal is flipped, simulating payload corruption in flight.
    CorruptReply,
}

/// Everything a fault hook can observe about the executing site.
#[derive(Clone, Copy, Debug)]
pub struct Probe {
    /// Component executing the site.
    pub component: &'static str,
    /// Site label.
    pub site: &'static str,
    /// Site kind.
    pub kind: SiteKind,
    /// Current virtual time.
    pub now: u64,
    /// Whether the component's recovery window is open (used by the
    /// service-disruption experiment, which injects only inside windows).
    pub window_open: bool,
    /// Whether the message being processed is a request that can still be
    /// error-replied — together with `window_open` this means a crash here
    /// is consistently recoverable.
    pub replyable: bool,
}

/// Hook consulted at every instrumentation site. The fault-injection crate
/// implements this; a no-op implementation is used in production runs.
pub trait FaultHook: Send {
    /// Called at each executed site; returns the effect to apply.
    fn on_site(&mut self, probe: &Probe) -> FaultEffect;
}

/// The default hook: never injects anything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn on_site(&mut self, _probe: &Probe) -> FaultEffect {
        FaultEffect::None
    }
}

/// Panic payload identifying an injected fail-stop fault.
#[derive(Clone, Debug)]
pub struct InjectedCrash {
    /// The site where the fault fired.
    pub site: &'static str,
}

/// Panic payload identifying an injected hang.
#[derive(Clone, Debug)]
pub struct InjectedHang {
    /// The site where the fault fired.
    pub site: &'static str,
}

/// Reply tampering armed by a fail-silent fault during the current handler
/// invocation: applied by the kernel to the handler's first outbound reply
/// after the handler returns (the handler itself completes correctly).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub(crate) enum ReplyTamper {
    /// No tampering armed.
    #[default]
    None,
    /// Remove the first reply from the outbound batch.
    Drop,
    /// Flip the first reply's integrity seal.
    Corrupt,
}

/// How far the Recovery Server has driven an in-flight recovery. Persisted
/// kernel-side in the recovery intent log so that an RS crash mid-conduct
/// can be re-driven instead of forcing an uncontrolled shutdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntentPhase {
    /// The kernel routed a crash notification to the RS.
    Notified,
    /// The RS accounted the crash and issued (or is about to issue) the
    /// recover request.
    Issued,
    /// The RS armed a backoff timer; the recovery is deferred.
    Deferred,
}

impl From<IntentPhase> for osiris_axiom::IntentPhaseCode {
    fn from(p: IntentPhase) -> osiris_axiom::IntentPhaseCode {
        match p {
            IntentPhase::Notified => osiris_axiom::IntentPhaseCode::Notified,
            IntentPhase::Issued => osiris_axiom::IntentPhaseCode::Issued,
            IntentPhase::Deferred => osiris_axiom::IntentPhaseCode::Deferred,
        }
    }
}

/// A privileged operation requested by the Recovery Server.
#[derive(Clone, Debug)]
pub enum PrivOp {
    /// Execute the recovery of a crashed or hung component under the active
    /// policy.
    Recover {
        /// Endpoint index of the component to recover.
        target: u8,
    },
    /// Declare a hung component dead (heartbeat timeout) and recover it.
    KillHung {
        /// Endpoint index of the hung component.
        target: u8,
    },
    /// Stop the whole system in a controlled fashion.
    ControlledShutdown {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Bench a crash-looping component: no further restarts; the kernel
    /// reconciles its pending requester and bounces subsequent requests
    /// with an immediate crash reply.
    Quarantine {
        /// Endpoint index of the component to quarantine.
        target: u8,
    },
    /// Update the kernel's persisted recovery intent for `target`: which
    /// phase the RS has driven the in-flight recovery to. If the RS crashes
    /// mid-conduct, the kernel re-drives the intent after restarting the RS.
    RecordIntent {
        /// Component whose recovery is being conducted.
        target: u8,
        /// How far the conduct has progressed.
        phase: IntentPhase,
    },
    /// Refresh `target`'s spare clone image in the content-addressed pool.
    /// The kernel re-chunks against the existing manifest off the request
    /// hot path, so clean objects are reshared instead of recopied; the
    /// refresh is skipped (counted, not failed) if the component is not
    /// alive or its heap has diverged from the pristine image.
    RefreshImage {
        /// Endpoint index of the component whose image to refresh.
        target: u8,
    },
    /// Record an escalation-ladder decision for observability: the kernel
    /// updates the per-component escalation metrics and emits the
    /// corresponding trace events.
    NoteEscalation {
        /// Crashed component the ladder evaluated.
        target: u8,
        /// Restarts inside the sliding window, including this crash.
        restarts_in_window: u32,
        /// Backoff armed before the next restart (0 = immediate).
        backoff: u64,
        /// Whether the restart budget is exhausted.
        exhausted: bool,
    },
}

/// An event-driven OS component (server or driver).
///
/// Implementations keep *all* recoverable state in the heap provided at
/// `init` time, accessed through persistent-container handles stored in
/// `self`. The struct itself must be pure configuration + handles: after a
/// crash the kernel replaces it with a clone of the pristine post-`init`
/// value ([`Server::clone_box`]), re-bound to the rolled-back heap.
pub trait Server<P: Protocol>: Send {
    /// Component name (stable; used in tables and fault-site attribution).
    fn name(&self) -> &'static str;

    /// One-time initialization: allocate heap state, set recurring timers.
    /// Runs outside any recovery window.
    fn init(&mut self, ctx: &mut Ctx<'_, P>);

    /// Handles one incoming message. Called with the recovery window already
    /// opened (or the request marked unprotected, for non-checkpointing
    /// policies). Must not block: long interactions save continuations in
    /// the heap and resume on the async reply.
    fn handle(&mut self, msg: &Message<P>, ctx: &mut Ctx<'_, P>);

    /// Post-recovery fixup, e.g. the cooperative-thread repair of §IV-E.
    /// Runs after the heap has been rolled back / restored.
    fn on_restore(&mut self, _heap: &mut Heap) {}

    /// Exports facts for cross-component consistency audits, as
    /// `(fact-name, value)` pairs (e.g. `("proc", pid)` for every live
    /// process). The OS assembly cross-checks facts between components.
    fn audit_facts(&self, _heap: &Heap) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Clones the pristine server value (handles + configuration).
    fn clone_box(&self) -> Box<dyn Server<P>>;
}

/// Everything a handler may do, bundled: heap access, message sends (SEEP
/// checked against the active policy), timers, cost accounting and
/// fault-injection probes.
pub struct Ctx<'a, P: Protocol> {
    pub(crate) comp_name: &'static str,
    pub(crate) self_ep: Endpoint,
    pub(crate) heap: &'a mut Heap,
    pub(crate) window: &'a mut RecoveryWindow,
    pub(crate) policy: &'a dyn RecoveryPolicy,
    pub(crate) hook: &'a mut dyn FaultHook,
    pub(crate) cost: &'a CostModel,
    pub(crate) now: u64,
    pub(crate) cycles: u64,
    pub(crate) out: Vec<Message<P>>,
    pub(crate) timers: Vec<(u64, Option<SpanInfo>, P)>,
    pub(crate) priv_ops: Vec<PrivOp>,
    pub(crate) privileged: bool,
    pub(crate) next_msg_id: &'a mut u64,
    pub(crate) replied: Vec<MsgId>,
    pub(crate) cur_replyable: bool,
    pub(crate) tamper: ReplyTamper,
    /// Span of the message being handled: inherited by every send and
    /// timer the handler issues, so causality propagates hop by hop
    /// without the servers knowing spans exist.
    pub(crate) cur_span: Option<SpanInfo>,
}

impl<P: Protocol> fmt::Debug for Ctx<'_, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("component", &self.comp_name)
            .field("now", &self.now)
            .field("cycles", &self.cycles)
            .finish()
    }
}

impl<'a, P: Protocol> Ctx<'a, P> {
    /// The component's own endpoint.
    pub fn self_endpoint(&self) -> Endpoint {
        self.self_ep
    }

    /// Current virtual time (at handler entry).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Mutable access to the component's checkpointed heap.
    pub fn heap(&mut self) -> &mut Heap {
        self.heap
    }

    /// Shared access to the component's heap.
    pub fn heap_ref(&self) -> &Heap {
        self.heap
    }

    /// Charges `cycles` of computation, attributed to the recovery-window
    /// state for the coverage metric.
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.window.charge(cycles);
    }

    fn alloc_msg_id(&mut self) -> MsgId {
        *self.next_msg_id += 1;
        MsgId(*self.next_msg_id)
    }

    fn push_send(&mut self, mut msg: Message<P>) {
        // Seal the payload before it leaves the component: the digest is
        // what reply-integrity verification checks at delivery, so any
        // corruption between here and the receiver is detectable.
        msg.integrity = msg.payload.digest();
        // Every outbound message passes through a SEEP: consult the policy
        // and close the recovery window on the first disallowed send.
        let meta = msg.seep;
        self.window.on_send(self.policy, &meta, self.heap);
        self.charge(self.cost.ipc_send);
        self.heap.trace_emit(osiris_trace::TraceEvent::IpcSend {
            dst: match msg.dst {
                Endpoint::Component(c) => c,
                _ => osiris_trace::KERNEL_COMP,
            },
            msg_id: msg.id.0,
            class: meta.class.into(),
        });
        self.out.push(msg);
    }

    /// Sends a request to another component; returns the message id to
    /// correlate the eventual reply (store it in a continuation).
    ///
    /// # Panics
    ///
    /// Panics if the payload's SEEP metadata is not of request kind.
    pub fn send_request(&mut self, dst: Endpoint, payload: P) -> MsgId {
        let seep = payload.seep();
        assert_eq!(
            seep.kind,
            MessageKind::Request,
            "send_request with non-request payload"
        );
        let id = self.alloc_msg_id();
        let span = self.cur_span;
        self.push_send(Message {
            id,
            src: self.self_ep,
            dst,
            reply_to: None,
            user_tag: None,
            seep,
            span,
            integrity: 0,
            payload,
        });
        id
    }

    /// Sends a one-way notification.
    pub fn notify(&mut self, dst: Endpoint, payload: P) {
        let seep = payload.seep();
        let id = self.alloc_msg_id();
        let span = self.cur_span;
        self.push_send(Message {
            id,
            src: self.self_ep,
            dst,
            reply_to: None,
            user_tag: None,
            seep,
            span,
            integrity: 0,
            payload,
        });
    }

    /// Replies to the request identified by `rp` (obtained from
    /// [`Message::return_path`], possibly stored in a continuation).
    pub fn reply(&mut self, rp: ReturnPath, payload: P) {
        let seep = payload.seep();
        let id = self.alloc_msg_id();
        self.replied.push(rp.msg_id);
        // The reply rejoins the *requester's* span (restored from the
        // return path, which may have sat in a continuation), not whatever
        // message happens to be driving this handler invocation.
        self.push_send(Message {
            id,
            src: self.self_ep,
            dst: rp.ep,
            reply_to: Some(rp.msg_id),
            user_tag: rp.user_tag,
            seep,
            span: rp.span,
            integrity: 0,
            payload,
        });
    }

    /// Schedules `payload` to be delivered to this component as a kernel
    /// notification after `delay` cycles. The timer inherits the current
    /// span, so deferred continuations (e.g. a disk-tick completion) stay
    /// attributed to the request that armed them.
    pub fn set_timer(&mut self, delay: u64, payload: P) {
        self.timers.push((delay, self.cur_span, payload));
    }

    /// Executes one instrumentation site (basic-block analog): charges the
    /// site cost, ticks coverage counters and consults the fault hook.
    ///
    /// # Panics
    ///
    /// Panics (with an [`InjectedCrash`] / [`InjectedHang`] payload) when an
    /// armed fail-stop or hang fault fires here — this is the injected
    /// fault, unwound and handled by the kernel.
    pub fn site(&mut self, site: &'static str) {
        self.charge(self.cost.site);
        self.window.tick_site();
        let probe = self.probe(site, SiteKind::Block);
        match self.hook.on_site(&probe) {
            FaultEffect::Panic => std::panic::panic_any(InjectedCrash { site }),
            FaultEffect::Hang => std::panic::panic_any(InjectedHang { site }),
            effect => self.apply_silent(effect),
        }
    }

    /// Applies a fail-silent effect that does not unwind: stalls charge
    /// extra virtual cycles (the handler still completes correctly), reply
    /// tampering is armed for the kernel to apply post-handler.
    fn apply_silent(&mut self, effect: FaultEffect) {
        match effect {
            FaultEffect::Stall(factor) => {
                let extra = self.cost.stall_quantum.saturating_mul(factor as u64);
                self.charge(extra);
            }
            FaultEffect::DropReply => self.tamper = ReplyTamper::Drop,
            FaultEffect::CorruptReply => self.tamper = ReplyTamper::Corrupt,
            _ => {}
        }
    }

    fn probe(&self, site: &'static str, kind: SiteKind) -> Probe {
        Probe {
            component: self.comp_name,
            site,
            kind,
            now: self.now + self.cycles,
            window_open: self.window.is_open(),
            replyable: self.cur_replyable && self.replied.is_empty(),
        }
    }

    /// A value-producing site: like [`Ctx::site`], but an armed fail-silent
    /// fault may perturb the returned value.
    pub fn site_val(&mut self, site: &'static str, value: u64) -> u64 {
        self.charge(self.cost.site);
        self.window.tick_site();
        let probe = self.probe(site, SiteKind::Value);
        match self.hook.on_site(&probe) {
            FaultEffect::Panic => std::panic::panic_any(InjectedCrash { site }),
            FaultEffect::Hang => std::panic::panic_any(InjectedHang { site }),
            FaultEffect::Perturb(mask) => value ^ mask,
            effect => {
                self.apply_silent(effect);
                value
            }
        }
    }

    /// A branch site: like [`Ctx::site`], but an armed fail-silent fault may
    /// flip the condition.
    pub fn site_branch(&mut self, site: &'static str, cond: bool) -> bool {
        self.charge(self.cost.site);
        self.window.tick_site();
        let probe = self.probe(site, SiteKind::Branch);
        match self.hook.on_site(&probe) {
            FaultEffect::Panic => std::panic::panic_any(InjectedCrash { site }),
            FaultEffect::Hang => std::panic::panic_any(InjectedHang { site }),
            FaultEffect::Flip => !cond,
            effect => {
                self.apply_silent(effect);
                cond
            }
        }
    }

    /// Whether the recovery window is currently open.
    pub fn window_open(&self) -> bool {
        self.window.is_open()
    }

    /// Forcibly closes the recovery window because a cooperative thread is
    /// about to yield (paper §IV-E): once the thread parks, interleaved work
    /// makes rollback to this request's checkpoint unsafe.
    pub fn yield_window(&mut self) {
        self.window
            .close(self.heap, osiris_core::CloseReason::ThreadYield);
    }

    /// Requests recovery of `target` (Recovery Server only).
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not privileged.
    pub fn recover(&mut self, target: u8) {
        assert!(self.privileged, "recover() requires a privileged component");
        self.priv_ops.push(PrivOp::Recover { target });
    }

    /// Declares a hung component dead and recovers it (Recovery Server
    /// only).
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not privileged.
    pub fn kill_hung(&mut self, target: u8) {
        assert!(
            self.privileged,
            "kill_hung() requires a privileged component"
        );
        self.priv_ops.push(PrivOp::KillHung { target });
    }

    /// Quarantines a crash-looping component (Recovery Server only): the
    /// kernel stops restarting it, reconciles its pending requester with a
    /// crash reply, and bounces subsequent requests to it.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not privileged.
    pub fn quarantine(&mut self, target: u8) {
        assert!(
            self.privileged,
            "quarantine() requires a privileged component"
        );
        self.priv_ops.push(PrivOp::Quarantine { target });
    }

    /// Asks the kernel to refresh `target`'s spare clone image in the
    /// content-addressed pool (Recovery Server only). This is the paper's
    /// background spare-copy replenishment moved off the recovery hot path:
    /// the kernel re-chunks incrementally against the previous manifest, so
    /// a clean heap reshares every chunk instead of recopying the state.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not privileged.
    pub fn refresh_image(&mut self, target: u8) {
        assert!(
            self.privileged,
            "refresh_image() requires a privileged component"
        );
        self.priv_ops.push(PrivOp::RefreshImage { target });
    }

    /// Updates the kernel's persisted recovery intent for `target`
    /// (Recovery Server only). The intent log is what makes an RS crash
    /// mid-conduct survivable: the restarted RS (or the kernel itself, after
    /// too many replays) completes the in-flight recovery from it.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not privileged.
    pub fn record_intent(&mut self, target: u8, phase: IntentPhase) {
        assert!(
            self.privileged,
            "record_intent() requires a privileged component"
        );
        self.priv_ops.push(PrivOp::RecordIntent { target, phase });
    }

    /// Records an escalation-ladder decision (Recovery Server only): the
    /// kernel updates `osiris_escalation_*` metrics and emits backoff /
    /// budget-exhausted trace events from it.
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not privileged.
    pub fn note_escalation(
        &mut self,
        target: u8,
        restarts_in_window: u32,
        backoff: u64,
        exhausted: bool,
    ) {
        assert!(
            self.privileged,
            "note_escalation() requires a privileged component"
        );
        self.priv_ops.push(PrivOp::NoteEscalation {
            target,
            restarts_in_window,
            backoff,
            exhausted,
        });
    }

    /// Requests a controlled shutdown of the whole system (Recovery Server
    /// only).
    ///
    /// # Panics
    ///
    /// Panics if the calling component is not privileged.
    pub fn controlled_shutdown(&mut self, reason: &'static str) {
        assert!(
            self.privileged,
            "controlled_shutdown() requires a privileged component"
        );
        self.priv_ops.push(PrivOp::ControlledShutdown { reason });
    }

    /// Whether this message already received a reply during this handler
    /// invocation (used by the kernel's crash handling).
    pub(crate) fn has_replied_to(&self, id: MsgId) -> bool {
        self.replied.contains(&id)
    }
}
