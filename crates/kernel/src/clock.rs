//! Virtual time and the cost model.
//!
//! The simulator measures *virtual cycles*, a deterministic proxy for
//! wall-clock time. Every architectural event — an IPC hop, a context
//! switch, a memory write, an undo-log append, a disk access — charges a
//! fixed cycle cost, so relative overheads (microkernel vs monolith,
//! instrumented vs not) are measurable and reproducible. Absolute values are
//! meaningless by design; only ratios matter, exactly as in the paper's
//! evaluation.

/// A monotonically increasing virtual clock counting cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock { now: 0 }
    }

    /// Current virtual time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock by `cycles`.
    pub fn advance(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Advances the clock to `t` (no-op if `t` is in the past).
    pub fn advance_to(&mut self, t: u64) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// Cycle costs of architectural events.
///
/// The defaults are loosely calibrated so the reproduction exhibits the
/// paper's *shapes*: IPC-heavy syscalls pay a multiple of a direct call
/// (Table IV), and per-write undo logging costs roughly twice a plain write
/// (Table V's 23% unoptimized overhead shrinking to ~5% when window-gated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Sending one message (trap + copy).
    pub ipc_send: u64,
    /// Delivering a message to a component (context switch + dispatch).
    pub ipc_deliver: u64,
    /// User→kernel syscall entry/exit overhead.
    pub syscall_entry: u64,
    /// Fixed cost of running a request handler (decode, dispatch).
    pub handler_base: u64,
    /// One instrumentation site (the basic-block analog).
    pub site: u64,
    /// One logical memory write through a persistent container.
    pub mem_write: u64,
    /// Appending one undo-log record (only while logging is on).
    pub undo_append: u64,
    /// Undoing one record during rollback.
    pub undo_rollback: u64,
    /// Fixed cost of the restart phase (activate spare clone).
    pub restart_base: u64,
    /// Per-kilobyte cost of state transfer during restart.
    pub restart_per_kb: u64,
    /// Fixed cost of the reconciliation phase.
    pub reconcile: u64,
    /// Disk access latency (driver request → completion interrupt).
    pub disk_latency: u64,
    /// Interval between Recovery Server heartbeat rounds.
    pub heartbeat_interval: u64,
    /// One unit of user-level computation.
    pub user_compute: u64,
    /// Extra cycles charged per unit of an injected `Stall(factor)` fault.
    /// Sized so a small factor already blows past the default watchdog
    /// deadline while the component keeps making progress (slow, not hung).
    pub stall_quantum: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ipc_send: 40,
            ipc_deliver: 140,
            syscall_entry: 60,
            handler_base: 25,
            site: 4,
            mem_write: 3,
            undo_append: 7,
            undo_rollback: 5,
            restart_base: 5_000,
            restart_per_kb: 120,
            reconcile: 600,
            disk_latency: 25_000,
            heartbeat_interval: 2_000_000,
            user_compute: 1,
            stall_quantum: 400_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = VirtualClock::new();
        c.advance(10);
        c.advance_to(5);
        assert_eq!(c.now(), 10);
        c.advance_to(50);
        assert_eq!(c.now(), 50);
    }

    #[test]
    fn default_costs_have_expected_ordering() {
        let m = CostModel::default();
        // Undo logging must cost more than a plain write (that's the
        // instrumentation overhead being measured)…
        assert!(m.undo_append > m.mem_write);
        // …and IPC must dwarf a direct call (that's the microkernel tax).
        assert!(m.ipc_send + m.ipc_deliver > m.handler_base);
        assert!(m.disk_latency > m.ipc_deliver);
    }
}
