//! Dependency-free deterministic PRNGs for OSIRIS.
//!
//! The fault-injection campaigns and the randomized (property-style) tests
//! need reproducible pseudo-random streams, but the build must work with no
//! network access, so this crate replaces the external `rand` dependency
//! with two small, well-known generators:
//!
//! * [`SplitMix64`] — the 64-bit finalizer-based generator from Steele,
//!   Lea & Flood (OOPSLA 2014). Used for seeding and hashing.
//! * [`Rng`] (xoshiro256\*\*) — Blackman & Vigna's general-purpose
//!   generator. All experiment and test code draws from this one.
//!
//! Both are tiny, fully deterministic for a given seed, and portable across
//! platforms — which is what makes `reproduce` runs diffable.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// SplitMix64: a fixed-increment 64-bit generator.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Rng`], and as a standalone mixing function ([`mix64`]).
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

/// The SplitMix64 output finalizer: a strong 64-bit bit mixer.
///
/// Also used as the hash function of the undo journal's coalescing index
/// (via the bench crate) and anywhere a cheap deterministic hash is needed.
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256\*\*: the workhorse generator.
///
/// Deterministic, seedable, `Copy`-free on purpose (accidental stream forks
/// are a classic reproducibility bug), with the convenience draws the
/// experiment harness and the randomized tests need.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose state is expanded from `seed` with
    /// SplitMix64, as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit output (upper bits of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw in `0..n`. Returns 0 when `n == 0`.
    ///
    /// Uses Lemire's multiply-shift reduction; the tiny modulo bias is
    /// irrelevant for test-workload generation.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A uniform draw in `0..n` as `usize`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// A uniform draw in `lo..hi` (half-open). Returns `lo` if the range is
    /// empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo)
    }

    /// A random byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A vector of `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.byte()).collect()
    }

    /// True with probability `num`/`den` (false when `den == 0`).
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        if den == 0 {
            return false;
        }
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 (from the public-domain
        // reference implementation).
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn xoshiro_is_deterministic_and_spreads() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge.
        let mut c = Rng::new(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.range(9, 9), 9);
        assert_eq!(r.range(9, 3), 9);
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = Rng::new(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below_usize(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_edges() {
        let mut r = Rng::new(3);
        assert!(!r.chance(1, 0));
        assert!((0..100).all(|_| r.chance(1, 1)));
        assert!((0..100).all(|_| !r.chance(0, 10)));
    }

    #[test]
    fn bytes_have_requested_length() {
        let mut r = Rng::new(9);
        assert_eq!(r.bytes(33).len(), 33);
        assert!(r.bytes(0).is_empty());
    }
}
