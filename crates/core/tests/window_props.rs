//! Randomized properties on the recovery-window state machine: the safety
//! argument of the whole paper hangs on these invariants. Driven by the
//! in-tree deterministic PRNG (`osiris-rng`); every failure reproduces from
//! the printed case seed.

use osiris_checkpoint::Heap;
use osiris_core::{
    CloseReason, Enhanced, EnhancedKill, MessageKind, Pessimistic, RecoveryPolicy, RecoveryWindow,
    SeepClass, SeepMeta,
};
use osiris_rng::Rng;

const CASES: u64 = 160;

#[derive(Clone, Copy, Debug)]
enum Event {
    Write(u64),
    SendNsm,
    SendSm,
    SendScoped,
    Yield,
}

fn gen_event(r: &mut Rng) -> Event {
    match r.below(5) {
        0 => Event::Write(r.next_u64()),
        1 => Event::SendNsm,
        2 => Event::SendSm,
        3 => Event::SendScoped,
        _ => Event::Yield,
    }
}

fn gen_events(r: &mut Rng, max: usize) -> Vec<Event> {
    let n = r.below_usize(max);
    (0..n).map(|_| gen_event(r)).collect()
}

fn meta(class: SeepClass) -> SeepMeta {
    SeepMeta {
        class,
        kind: MessageKind::Request,
        reply_possible: true,
        bounded: true,
    }
}

fn apply(
    w: &mut RecoveryWindow,
    heap: &mut Heap,
    cell: osiris_checkpoint::PCell<u64>,
    policy: &dyn RecoveryPolicy,
    e: Event,
) {
    match e {
        Event::Write(v) => cell.set(heap, v),
        Event::SendNsm => w.on_send(policy, &meta(SeepClass::NonStateModifying), heap),
        Event::SendSm => w.on_send(policy, &meta(SeepClass::StateModifying), heap),
        Event::SendScoped => w.on_send(policy, &meta(SeepClass::RequesterScoped), heap),
        Event::Yield => w.close(heap, CloseReason::ThreadYield),
    }
}

/// Invariant: whenever the window is still open after an arbitrary event
/// sequence, rolling back restores the exact checkpoint state.
#[test]
fn open_window_always_rolls_back_exactly() {
    for case in 0..CASES {
        let mut r = Rng::new(0x31ED_0001 ^ case);
        let initial = r.next_u64();
        let events = gen_events(&mut r, 30);
        let mut heap = Heap::new("prop");
        let cell = heap.alloc_cell("v", initial);
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        for e in events {
            apply(&mut w, &mut heap, cell, &Enhanced, e);
        }
        if w.is_open() {
            w.rollback(&mut heap);
            assert_eq!(cell.get(&heap), initial, "case seed {case}");
            assert_eq!(heap.log_len(), 0);
        } else {
            // Closed window: the undo log must already be discarded (the
            // overhead optimization) and logging disabled.
            assert_eq!(heap.log_len(), 0, "case seed {case}");
            assert!(!heap.logging());
        }
    }
}

/// Invariant: under the pessimistic policy, ANY send closes the window.
#[test]
fn pessimistic_closes_on_first_send() {
    for case in 0..CASES {
        let mut r = Rng::new(0x31ED_0002 ^ case);
        let events = gen_events(&mut r, 30);
        let mut heap = Heap::new("prop");
        let cell = heap.alloc_cell("v", 0u64);
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        let mut sent = false;
        for e in events {
            apply(&mut w, &mut heap, cell, &Pessimistic, e);
            sent = sent
                || matches!(
                    e,
                    Event::SendNsm | Event::SendSm | Event::SendScoped | Event::Yield
                );
            assert_eq!(w.is_open(), !sent, "case seed {case}");
        }
    }
}

/// Invariant: the enhanced policy closes exactly on the first
/// state-modifying (or scoped, which it treats as state-modifying) send or
/// yield.
#[test]
fn enhanced_closes_exactly_on_dependency_creation() {
    for case in 0..CASES {
        let mut r = Rng::new(0x31ED_0003 ^ case);
        let events = gen_events(&mut r, 30);
        let mut heap = Heap::new("prop");
        let cell = heap.alloc_cell("v", 0u64);
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        let mut dependency = false;
        for e in events {
            apply(&mut w, &mut heap, cell, &Enhanced, e);
            dependency =
                dependency || matches!(e, Event::SendSm | Event::SendScoped | Event::Yield);
            assert_eq!(w.is_open(), !dependency, "case seed {case}");
        }
    }
}

/// Invariant: enhanced-kill keeps scoped sends inside the window and
/// remembers them; scoped-send memory resets at open/complete.
#[test]
fn enhanced_kill_tracks_scoped_sends() {
    for case in 0..CASES {
        let mut r = Rng::new(0x31ED_0004 ^ case);
        let events = gen_events(&mut r, 30);
        let mut heap = Heap::new("prop");
        let cell = heap.alloc_cell("v", 0u64);
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        let mut scoped = false;
        let mut closed = false;
        for e in events {
            apply(&mut w, &mut heap, cell, &EnhancedKill, e);
            closed = closed || matches!(e, Event::SendSm | Event::Yield);
            if !closed && matches!(e, Event::SendScoped) {
                scoped = true;
            }
            assert_eq!(w.is_open(), !closed, "case seed {case}");
            if w.is_open() {
                assert_eq!(w.had_scoped_sends(), scoped, "case seed {case}");
            }
        }
        w.open(&mut heap);
        assert!(
            !w.had_scoped_sends(),
            "open() must reset scoped-send memory"
        );
    }
}

/// Invariant: coverage counters never lose a site tick.
#[test]
fn site_ticks_are_conserved() {
    for case in 0..CASES {
        let mut r = Rng::new(0x31ED_0005 ^ case);
        let in_window = r.below(200);
        let out_window = r.below(200);
        let mut heap = Heap::new("prop");
        let mut w = RecoveryWindow::new();
        for _ in 0..out_window {
            w.tick_site();
        }
        w.open(&mut heap);
        for _ in 0..in_window {
            w.tick_site();
        }
        let s = w.stats();
        assert_eq!(s.sites_in, in_window, "case seed {case}");
        assert_eq!(s.sites_out, out_window, "case seed {case}");
        let cov = s.coverage_by_sites();
        assert!((0.0..=1.0).contains(&cov));
        if in_window + out_window > 0 {
            let expect = in_window as f64 / (in_window + out_window) as f64;
            assert!((cov - expect).abs() < 1e-9, "case seed {case}");
        }
    }
}
