//! Property tests on the recovery-window state machine: the safety
//! argument of the whole paper hangs on these invariants.

use osiris_checkpoint::Heap;
use osiris_core::{
    CloseReason, Enhanced, EnhancedKill, MessageKind, Pessimistic, RecoveryPolicy, RecoveryWindow,
    SeepClass, SeepMeta,
};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Event {
    Write(u64),
    SendNsm,
    SendSm,
    SendScoped,
    Yield,
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        any::<u64>().prop_map(Event::Write),
        Just(Event::SendNsm),
        Just(Event::SendSm),
        Just(Event::SendScoped),
        Just(Event::Yield),
    ]
}

fn meta(class: SeepClass) -> SeepMeta {
    SeepMeta { class, kind: MessageKind::Request, reply_possible: true }
}

fn apply(
    w: &mut RecoveryWindow,
    heap: &mut Heap,
    cell: osiris_checkpoint::PCell<u64>,
    policy: &dyn RecoveryPolicy,
    e: Event,
) {
    match e {
        Event::Write(v) => cell.set(heap, v),
        Event::SendNsm => w.on_send(policy, &meta(SeepClass::NonStateModifying), heap),
        Event::SendSm => w.on_send(policy, &meta(SeepClass::StateModifying), heap),
        Event::SendScoped => w.on_send(policy, &meta(SeepClass::RequesterScoped), heap),
        Event::Yield => w.close(heap, CloseReason::ThreadYield),
    }
}

proptest! {
    /// Invariant: whenever the window is still open after an arbitrary
    /// event sequence, rolling back restores the exact checkpoint state.
    #[test]
    fn open_window_always_rolls_back_exactly(
        initial in any::<u64>(),
        events in proptest::collection::vec(event_strategy(), 0..30),
    ) {
        let mut heap = Heap::new("prop");
        let cell = heap.alloc_cell("v", initial);
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        for e in events {
            apply(&mut w, &mut heap, cell, &Enhanced, e);
        }
        if w.is_open() {
            w.rollback(&mut heap);
            prop_assert_eq!(cell.get(&heap), initial);
            prop_assert_eq!(heap.log_len(), 0);
        } else {
            // Closed window: the undo log must already be discarded (the
            // overhead optimization) and logging disabled.
            prop_assert_eq!(heap.log_len(), 0);
            prop_assert!(!heap.logging());
        }
    }

    /// Invariant: under the pessimistic policy, ANY send closes the window.
    #[test]
    fn pessimistic_closes_on_first_send(
        events in proptest::collection::vec(event_strategy(), 1..30),
    ) {
        let mut heap = Heap::new("prop");
        let cell = heap.alloc_cell("v", 0u64);
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        let mut sent = false;
        for e in events {
            apply(&mut w, &mut heap, cell, &Pessimistic, e);
            sent = sent
                || matches!(e, Event::SendNsm | Event::SendSm | Event::SendScoped | Event::Yield);
            prop_assert_eq!(w.is_open(), !sent);
        }
    }

    /// Invariant: the enhanced policy closes exactly on the first
    /// state-modifying (or scoped, which it treats as state-modifying) send
    /// or yield.
    #[test]
    fn enhanced_closes_exactly_on_dependency_creation(
        events in proptest::collection::vec(event_strategy(), 1..30),
    ) {
        let mut heap = Heap::new("prop");
        let cell = heap.alloc_cell("v", 0u64);
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        let mut dependency = false;
        for e in events {
            apply(&mut w, &mut heap, cell, &Enhanced, e);
            dependency = dependency
                || matches!(e, Event::SendSm | Event::SendScoped | Event::Yield);
            prop_assert_eq!(w.is_open(), !dependency);
        }
    }

    /// Invariant: enhanced-kill keeps scoped sends inside the window and
    /// remembers them; scoped-send memory resets at open/complete.
    #[test]
    fn enhanced_kill_tracks_scoped_sends(
        events in proptest::collection::vec(event_strategy(), 1..30),
    ) {
        let mut heap = Heap::new("prop");
        let cell = heap.alloc_cell("v", 0u64);
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        let mut scoped = false;
        let mut closed = false;
        for e in events {
            apply(&mut w, &mut heap, cell, &EnhancedKill, e);
            closed = closed || matches!(e, Event::SendSm | Event::Yield);
            if !closed && matches!(e, Event::SendScoped) {
                scoped = true;
            }
            prop_assert_eq!(w.is_open(), !closed);
            if w.is_open() {
                prop_assert_eq!(w.had_scoped_sends(), scoped);
            }
        }
        w.open(&mut heap);
        prop_assert!(!w.had_scoped_sends(), "open() must reset scoped-send memory");
    }

    /// Invariant: coverage counters never lose a site tick.
    #[test]
    fn site_ticks_are_conserved(
        in_window in 0u64..200,
        out_window in 0u64..200,
    ) {
        let mut heap = Heap::new("prop");
        let mut w = RecoveryWindow::new();
        for _ in 0..out_window {
            w.tick_site();
        }
        w.open(&mut heap);
        for _ in 0..in_window {
            w.tick_site();
        }
        let s = w.stats();
        prop_assert_eq!(s.sites_in, in_window);
        prop_assert_eq!(s.sites_out, out_window);
        let cov = s.coverage_by_sites();
        prop_assert!((0.0..=1.0).contains(&cov));
        if in_window + out_window > 0 {
            let expect = in_window as f64 / (in_window + out_window) as f64;
            prop_assert!((cov - expect).abs() < 1e-9);
        }
    }
}
