//! Randomized properties on the escalation ladder's sliding-window restart
//! budget: the bounded-recovery argument (crash loops terminate in bounded
//! virtual time) rests on these invariants. Driven by the in-tree
//! deterministic PRNG (`osiris-rng`); every failure reproduces from the
//! printed case seed.

use osiris_core::{EscalationPolicy, EscalationStep, RestartBudget};
use osiris_rng::Rng;

const CASES: u64 = 160;

/// Generates a strictly increasing timestamp sequence — virtual clocks
/// never run backwards, and two restarts of the same component can never
/// complete at the same instant (recovery itself charges cycles).
fn gen_times(r: &mut Rng, max_events: usize, max_gap: u64) -> Vec<u64> {
    let n = r.below_usize(max_events) + 1;
    let mut now = r.below(1_000);
    let mut times = Vec::with_capacity(n);
    for _ in 0..n {
        now += r.below(max_gap) + 1;
        times.push(now);
    }
    times
}

/// Invariant: `observe` returns exactly the number of retained history
/// entries, every retained entry is strictly inside the window, and the
/// newest observation is always retained.
#[test]
fn observe_counts_exactly_the_window_population() {
    for case in 0..CASES {
        let mut r = Rng::new(0x31ED_0101 ^ case);
        let budget = RestartBudget {
            window: r.below(500_000) + 1,
            max_restarts: (r.below(16) + 1) as u32,
        };
        let times = gen_times(&mut r, 40, 100_000);
        let mut history = Vec::new();
        let mut shadow: Vec<u64> = Vec::new();
        for &now in &times {
            let n = budget.observe(&mut history, now);
            shadow.push(now);
            shadow.retain(|&t| now.saturating_sub(t) < budget.window);
            assert_eq!(n as usize, history.len(), "case seed {case}");
            assert_eq!(history, shadow, "case seed {case}");
            assert!(
                history
                    .iter()
                    .all(|&t| now.saturating_sub(t) < budget.window),
                "case seed {case}: stale entry survived pruning"
            );
            assert_eq!(history.last(), Some(&now), "case seed {case}");
            assert!(n >= 1, "case seed {case}: the new restart always counts");
        }
    }
}

/// Invariant: the history length is bounded by the densest possible packing
/// of the window, so the checkpointed Vec cannot grow without bound even
/// under a permanent crash loop.
#[test]
fn history_never_outgrows_the_window() {
    for case in 0..CASES {
        let mut r = Rng::new(0x31ED_0102 ^ case);
        let budget = RestartBudget {
            window: r.below(10_000) + 1,
            max_restarts: 4,
        };
        // Dense hammering: gaps of 0..=2 cycles.
        let times = gen_times(&mut r, 200, 3);
        let mut history = Vec::new();
        for &now in &times {
            budget.observe(&mut history, now);
            assert!(
                history.len() as u64 <= budget.window + 1,
                "case seed {case}: {} entries in a {}-cycle window",
                history.len(),
                budget.window
            );
        }
    }
}

/// Invariant: a zero-width window never accumulates — every observation
/// sees pressure exactly 1. This is what makes
/// `EscalationPolicy::unbounded()` restart forever without leaking memory.
#[test]
fn zero_window_pressure_is_always_one() {
    for case in 0..CASES {
        let mut r = Rng::new(0x31ED_0103 ^ case);
        let budget = RestartBudget {
            window: 0,
            max_restarts: 1,
        };
        let times = gen_times(&mut r, 60, 50);
        let mut history = Vec::new();
        for &now in &times {
            assert_eq!(budget.observe(&mut history, now), 1, "case seed {case}");
            assert_eq!(history.len(), 1, "case seed {case}");
        }
    }
}

/// Invariant: observations are time-translation invariant — shifting every
/// timestamp by a constant offset yields the same pressure sequence. The
/// ladder's decisions therefore depend only on crash spacing, never on
/// absolute virtual time.
#[test]
fn pressure_is_translation_invariant() {
    for case in 0..CASES {
        let mut r = Rng::new(0x31ED_0104 ^ case);
        let budget = RestartBudget {
            window: r.below(100_000) + 1,
            max_restarts: 8,
        };
        let times = gen_times(&mut r, 40, 60_000);
        let offset = r.below(1 << 40);
        let run = |shift: u64| -> Vec<u32> {
            let mut history = Vec::new();
            times
                .iter()
                .map(|&t| budget.observe(&mut history, t + shift))
                .collect()
        };
        assert_eq!(run(0), run(offset), "case seed {case}");
    }
}

/// Invariant: the ladder is monotone — for a fixed quarantine count the
/// step sequence over rising pressure is Restart* then (Quarantine |
/// Shutdown), never returning to Restart; and backoff within the Restart
/// band never decreases.
#[test]
fn ladder_is_monotone_in_pressure() {
    for case in 0..CASES {
        let mut r = Rng::new(0x31ED_0105 ^ case);
        let policy = EscalationPolicy {
            budget: RestartBudget {
                window: 1_000_000,
                max_restarts: (r.below(12) + 1) as u32,
            },
            backoff_base: r.below(50_000) + 1,
            backoff_max: r.below(500_000) + 50_000,
            max_quarantined: (r.below(3) + 1) as u32,
        };
        let quarantined = r.below(4) as u32;
        let mut seen_terminal = false;
        let mut last_backoff = 0u64;
        for pressure in 1..=(policy.budget.max_restarts + 4) {
            match policy.decide(pressure, quarantined) {
                EscalationStep::Restart { backoff } => {
                    assert!(
                        !seen_terminal,
                        "case seed {case}: ladder stepped back down to Restart"
                    );
                    assert!(
                        pressure <= policy.budget.max_restarts,
                        "case seed {case}: restart past the budget"
                    );
                    assert!(
                        backoff >= last_backoff,
                        "case seed {case}: backoff shrank ({last_backoff} -> {backoff})"
                    );
                    assert!(
                        backoff <= policy.backoff_max,
                        "case seed {case}: backoff above cap"
                    );
                    last_backoff = backoff;
                }
                EscalationStep::Quarantine => {
                    seen_terminal = true;
                    assert!(
                        quarantined < policy.max_quarantined,
                        "case seed {case}: quarantine past the cap"
                    );
                }
                EscalationStep::Shutdown => {
                    seen_terminal = true;
                    assert!(
                        quarantined >= policy.max_quarantined,
                        "case seed {case}: shutdown below the quarantine cap"
                    );
                }
            }
        }
        assert!(
            seen_terminal,
            "case seed {case}: pressure past the budget must leave the Restart band"
        );
    }
}
