//! Recovery decisions and the three-phase recovery structure.
//!
//! Recovery in OSIRIS is structured in three phases (paper §IV-C):
//! **restart** (replace the dead component with a fresh clone and transfer
//! its state), **rollback** (apply the undo log to restore the checkpoint
//! taken at the top of the request loop) and **reconciliation** (make the
//! global state consistent — by error virtualization or controlled
//! shutdown). This module holds the pure decision logic; the mechanics are
//! executed by the message-passing substrate (the kernel crate here). Every
//! decision the kernel acts on is sealed into the axiom — the hash-chained
//! control-plane log — as a `RecoveryDecision` (and, when the chosen action
//! proves impossible, `RecoveryFallback`) event, so a run's decisions can be
//! replayed from the log alone and bisected against another run's.

use crate::policy::RecoveryPolicy;

/// Everything the reconciliation decision depends on at crash time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashContext {
    /// Was the crashed component's recovery window open?
    pub window_open: bool,
    /// Can an error reply be delivered for the failure-triggering request?
    pub reply_possible: bool,
    /// Did the fault fire inside recovery code itself (RS or the kernel's
    /// recovery path)? This violates the single-fault model.
    pub in_recovery_code: bool,
    /// Did the window see any requester-scoped sends (cleanable by killing
    /// the requester)?
    pub scoped_sends: bool,
    /// Is the failure-triggering requester a user process (killable)?
    pub requester_is_process: bool,
}

/// The reconciliation action chosen for a crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryAction {
    /// Restart the component, roll its state back to the last checkpoint and
    /// send `E_CRASH` to the requester (error virtualization). Globally
    /// consistent by construction; handles persistent faults because the
    /// failure-triggering request is discarded rather than replayed.
    RollbackAndErrorReply,
    /// Restart and roll back the component, then **kill the requesting
    /// process**: its exit path cleans up the requester-scoped state the
    /// crashed window had already pushed to other components (paper §VII,
    /// "Extensibility").
    RollbackAndKillRequester,
    /// Restart the component with its pristine post-initialization state
    /// (stateless baseline). All accumulated state is lost.
    FreshRestart,
    /// Restart the component but keep its state exactly as it was at the
    /// moment of the crash (naive baseline). Half-applied updates survive.
    ContinueAsIs,
    /// Stop the whole system in a controlled fashion because consistent
    /// recovery cannot be guaranteed (window closed, or no error reply
    /// possible).
    ControlledShutdown,
    /// No recovery is possible at all (fault inside the recovery path).
    UncontrolledCrash,
}

/// The wire form of a decision, shared by the trace and the axiom (the
/// code lives in `osiris-axiom`; the trace crate re-exports it). Keeping
/// one numbering for both means a trace event and the axiom record sealing
/// the same decision can never disagree.
impl From<RecoveryAction> for osiris_trace::ActionCode {
    fn from(a: RecoveryAction) -> osiris_trace::ActionCode {
        match a {
            RecoveryAction::RollbackAndErrorReply => osiris_trace::ActionCode::RollbackErrorReply,
            RecoveryAction::RollbackAndKillRequester => {
                osiris_trace::ActionCode::RollbackKillRequester
            }
            RecoveryAction::FreshRestart => osiris_trace::ActionCode::FreshRestart,
            RecoveryAction::ContinueAsIs => osiris_trace::ActionCode::ContinueAsIs,
            RecoveryAction::ControlledShutdown => osiris_trace::ActionCode::ControlledShutdown,
            RecoveryAction::UncontrolledCrash => osiris_trace::ActionCode::UncontrolledCrash,
        }
    }
}

impl RecoveryAction {
    /// Whether this action keeps the system running.
    pub fn system_survives(self) -> bool {
        matches!(
            self,
            RecoveryAction::RollbackAndErrorReply
                | RecoveryAction::RollbackAndKillRequester
                | RecoveryAction::FreshRestart
                | RecoveryAction::ContinueAsIs
        )
    }
}

/// The recovery fallback chain: the next rung to try when executing `action`
/// itself fails (journal integrity violation, heap-image damage, or a fault
/// injected inside a recovery phase).
///
/// Each rung gives up strictly more state than the previous one, so the
/// degraded outcome is always consistent: a rollback whose undo log cannot
/// be trusted degrades to a fresh restart (all accumulated state lost, but
/// no corrupted state replayed); a fresh restart whose image cannot be
/// trusted degrades to a controlled shutdown. Terminal actions have no
/// fallback — `None` means the chain is exhausted.
pub fn fallback_action(action: RecoveryAction) -> Option<RecoveryAction> {
    match action {
        RecoveryAction::RollbackAndErrorReply | RecoveryAction::RollbackAndKillRequester => {
            Some(RecoveryAction::FreshRestart)
        }
        RecoveryAction::FreshRestart | RecoveryAction::ContinueAsIs => {
            Some(RecoveryAction::ControlledShutdown)
        }
        RecoveryAction::ControlledShutdown | RecoveryAction::UncontrolledCrash => None,
    }
}

/// A complete reconciliation decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryDecision {
    /// What to do with the crashed component / the system.
    pub action: RecoveryAction,
    /// Whether to send an `E_CRASH` error reply to the requester.
    pub error_reply: bool,
}

impl RecoveryDecision {
    /// Creates a decision; `error_reply` is forced off for actions that end
    /// the system.
    pub fn new(action: RecoveryAction, error_reply: bool) -> Self {
        let error_reply = error_reply && action.system_survives();
        RecoveryDecision {
            action,
            error_reply,
        }
    }
}

/// The three recovery phases, used for cost accounting and tracing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryPhase {
    /// Replace the dead component with a spare clone; transfer state.
    Restart,
    /// Apply the undo log to restore the last checkpoint.
    Rollback,
    /// Error virtualization or controlled shutdown.
    Reconciliation,
}

/// Maps a crash to its recovery decision under `policy`.
///
/// This is the single entry point the substrate calls when a component
/// crashes; it is deliberately total (every context yields a decision) and
/// free of side effects, keeping the RCB small and auditable.
pub fn decide_recovery(policy: &dyn RecoveryPolicy, crash: &CrashContext) -> RecoveryDecision {
    policy.reconcile(crash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Enhanced, Pessimistic};

    #[test]
    fn survival_classification() {
        assert!(RecoveryAction::RollbackAndErrorReply.system_survives());
        assert!(RecoveryAction::FreshRestart.system_survives());
        assert!(RecoveryAction::ContinueAsIs.system_survives());
        assert!(!RecoveryAction::ControlledShutdown.system_survives());
        assert!(!RecoveryAction::UncontrolledCrash.system_survives());
    }

    #[test]
    fn fallback_chain_terminates_at_shutdown() {
        let mut action = RecoveryAction::RollbackAndErrorReply;
        let mut rungs = vec![action];
        while let Some(next) = fallback_action(action) {
            action = next;
            rungs.push(action);
        }
        assert_eq!(
            rungs,
            vec![
                RecoveryAction::RollbackAndErrorReply,
                RecoveryAction::FreshRestart,
                RecoveryAction::ControlledShutdown,
            ]
        );
        assert_eq!(fallback_action(RecoveryAction::UncontrolledCrash), None);
    }

    #[test]
    fn error_reply_suppressed_on_shutdown() {
        let d = RecoveryDecision::new(RecoveryAction::ControlledShutdown, true);
        assert!(!d.error_reply);
    }

    #[test]
    fn decide_recovery_delegates_to_policy() {
        let ctx = CrashContext {
            window_open: true,
            reply_possible: true,
            in_recovery_code: false,
            scoped_sends: false,
            requester_is_process: true,
        };
        assert_eq!(
            decide_recovery(&Enhanced, &ctx).action,
            RecoveryAction::RollbackAndErrorReply
        );
        assert_eq!(
            decide_recovery(&Pessimistic, &ctx).action,
            RecoveryAction::RollbackAndErrorReply
        );
    }
}
