//! SEEPs: Side Effect Engraved Passages.
//!
//! In OSIRIS every inter-component communication channel is wrapped by a
//! SEEP that *statically* engraves the side-effect consequences of the
//! messages it carries (paper §III-A, §IV-B). The compiler pass of the
//! original prototype annotated outbound call sites; here the protocol types
//! themselves carry a [`SeepMeta`] so the classification is part of the
//! message's static type information.

/// Side-effect class of a message with respect to the *receiver's* state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeepClass {
    /// The receiver handles the message without modifying its own state
    /// (e.g. a read-only query). The receiving end never becomes aware of
    /// changes in the sender's state, so rolling the sender back cannot
    /// create an inconsistency — these sends may keep a recovery window
    /// open under the *enhanced* policy.
    NonStateModifying,
    /// The receiver's state changes as a consequence of this message. Once
    /// sent, rolling the sender back would orphan that remote state change,
    /// so the sender's recovery window must close.
    StateModifying,
    /// The receiver's state changes, but only in data scoped to the
    /// *requesting process*: killing the requester cleans the change up
    /// through its normal exit path. Policies that support the
    /// kill-requester reconciliation (paper §VII, "Extensibility") may keep
    /// the window open across such sends; all other policies treat this
    /// class as state-modifying.
    RequesterScoped,
}

impl SeepClass {
    /// Whether this class modifies the receiver's state (requester-scoped
    /// messages do — they are merely *cleanable*).
    pub fn is_state_modifying(self) -> bool {
        matches!(self, SeepClass::StateModifying | SeepClass::RequesterScoped)
    }
}

impl From<SeepClass> for osiris_trace::SeepClassCode {
    fn from(c: SeepClass) -> osiris_trace::SeepClassCode {
        match c {
            SeepClass::NonStateModifying => osiris_trace::SeepClassCode::NonStateModifying,
            SeepClass::StateModifying => osiris_trace::SeepClassCode::StateModifying,
            SeepClass::RequesterScoped => osiris_trace::SeepClassCode::RequesterScoped,
        }
    }
}

/// Kind of a message travelling through a SEEP.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// A request that expects a reply.
    Request,
    /// A reply to an earlier request.
    Reply,
    /// A one-way notification.
    Notification,
}

/// Static side-effect metadata engraved on a message.
///
/// `reply_possible` records whether, after recovering from a crash while
/// handling this message, an error reply (`E_CRASH`) can be delivered to the
/// requester — the precondition for *error virtualization* (paper §IV-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SeepMeta {
    /// Side-effect class at the receiver.
    pub class: SeepClass,
    /// Message kind.
    pub kind: MessageKind,
    /// Whether an error reply can reach the requester after recovery.
    pub reply_possible: bool,
    /// Whether the request's service time is bounded by the cost model.
    /// Bounded requests get a watchdog deadline armed at delivery;
    /// intrinsically blocking requests (waits, sleeps, reads that park on a
    /// continuation for an unbounded time) are engraved unbounded and are
    /// never armed — a `WaitPid` that takes forever is not a hang.
    pub bounded: bool,
}

impl SeepMeta {
    /// Metadata for a request of the given side-effect class that can be
    /// error-replied.
    pub fn request(class: SeepClass) -> Self {
        SeepMeta {
            class,
            kind: MessageKind::Request,
            reply_possible: true,
            bounded: true,
        }
    }

    /// Metadata for a reply. Replies inform the requester of *completed*
    /// work; whether that closes the sender's window is a policy decision
    /// (pessimistic closes on any send; enhanced treats replies carrying
    /// results of already-committed state changes as state-modifying at the
    /// requester only when flagged).
    pub fn reply(class: SeepClass) -> Self {
        SeepMeta {
            class,
            kind: MessageKind::Reply,
            reply_possible: false,
            bounded: true,
        }
    }

    /// Metadata for a one-way notification of the given class.
    pub fn notification(class: SeepClass) -> Self {
        SeepMeta {
            class,
            kind: MessageKind::Notification,
            reply_possible: false,
            bounded: true,
        }
    }

    /// Engraves the passage as unbounded: its service time depends on
    /// external progress (another process exiting, a timer firing), so no
    /// deadline is derivable and the watchdog must not arm one.
    pub fn unbounded(mut self) -> Self {
        self.bounded = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(SeepClass::StateModifying.is_state_modifying());
        assert!(!SeepClass::NonStateModifying.is_state_modifying());
    }

    #[test]
    fn constructors_set_kind_and_reply() {
        let r = SeepMeta::request(SeepClass::StateModifying);
        assert_eq!(r.kind, MessageKind::Request);
        assert!(r.reply_possible);
        let p = SeepMeta::reply(SeepClass::NonStateModifying);
        assert_eq!(p.kind, MessageKind::Reply);
        assert!(!p.reply_possible);
        let n = SeepMeta::notification(SeepClass::NonStateModifying);
        assert_eq!(n.kind, MessageKind::Notification);
        assert!(!n.reply_possible);
    }

    #[test]
    fn bounded_by_default_unbounded_builder() {
        assert!(SeepMeta::request(SeepClass::NonStateModifying).bounded);
        assert!(
            !SeepMeta::request(SeepClass::NonStateModifying)
                .unbounded()
                .bounded
        );
    }
}
