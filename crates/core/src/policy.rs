//! Recovery policies.
//!
//! A recovery policy controls which classes of SEEPs are allowed within a
//! recovery window and what reconciliation action to take after a crash
//! (paper §IV-B, §VI). The two OSIRIS policies are [`Pessimistic`] and
//! [`Enhanced`] (the default); [`Stateless`] and [`Naive`] reproduce the
//! evaluation baselines of §VI ("microreboot" restart and best-effort
//! restart, respectively).
//!
//! Policies are a trait so that new, system-specific policies can be defined
//! (paper §VII, "Composable recovery policies"); see
//! `examples/policy_tuning.rs` for a custom one.

use std::fmt;

use crate::recovery::{CrashContext, RecoveryAction, RecoveryDecision};
use crate::seep::SeepMeta;

/// A system-wide recovery policy.
///
/// Implementations must be cheap, deterministic and side-effect free: policy
/// code is part of the Reliable Computing Base.
pub trait RecoveryPolicy: Send + Sync + fmt::Debug {
    /// Human-readable policy name, as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Whether this policy maintains checkpoints (undo logging) at all.
    /// Baseline policies that never roll back return `false`, which lets the
    /// runtime skip all instrumentation.
    fn checkpointing(&self) -> bool {
        true
    }

    /// Whether sending a message with metadata `seep` keeps the current
    /// recovery window open. The first send for which this returns `false`
    /// closes the window.
    fn send_keeps_window_open(&self, seep: &SeepMeta) -> bool;

    /// Maps a crash context to the reconciliation decision.
    fn reconcile(&self, crash: &CrashContext) -> RecoveryDecision;

    /// Stable identifier for tables and serialization.
    fn kind(&self) -> PolicyKind;

    /// A boxed copy of this policy, used when an owning configuration is
    /// cloned (the fork path boots a second OS from the same `OsConfig`).
    ///
    /// The default reconstructs the canonical instance for the policy's
    /// [`PolicyKind`] — correct for every standard policy, which are all
    /// stateless unit structs. Custom policies (`PolicyKind::Custom`) must
    /// override this; the default panics for them via
    /// [`PolicyKind::instantiate`].
    fn clone_box(&self) -> Box<dyn RecoveryPolicy> {
        self.kind().instantiate()
    }
}

/// Identifies one of the evaluated policies (or a custom one).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Stateless restart baseline ("microreboot").
    Stateless,
    /// Naive best-effort restart baseline.
    Naive,
    /// OSIRIS pessimistic policy: any send closes the window.
    Pessimistic,
    /// OSIRIS enhanced policy (default): only state-modifying SEEPs close
    /// the window.
    Enhanced,
    /// The paper's §VII extension: enhanced, plus requester-scoped SEEPs
    /// stay inside the window and are reconciled by killing the requester.
    EnhancedKill,
    /// A user-defined policy.
    Custom,
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PolicyKind::Stateless => "stateless",
            PolicyKind::Naive => "naive",
            PolicyKind::Pessimistic => "pessimistic",
            PolicyKind::Enhanced => "enhanced",
            PolicyKind::EnhancedKill => "enhanced-kill",
            PolicyKind::Custom => "custom",
        };
        f.write_str(s)
    }
}

impl PolicyKind {
    /// All four standard policies evaluated in the paper, in table order.
    pub const STANDARD: [PolicyKind; 4] = [
        PolicyKind::Stateless,
        PolicyKind::Naive,
        PolicyKind::Pessimistic,
        PolicyKind::Enhanced,
    ];

    /// Instantiates the corresponding standard policy.
    ///
    /// # Panics
    ///
    /// Panics for [`PolicyKind::Custom`], which has no canonical instance.
    pub fn instantiate(self) -> Box<dyn RecoveryPolicy> {
        match self {
            PolicyKind::Stateless => Box::new(Stateless),
            PolicyKind::Naive => Box::new(Naive),
            PolicyKind::Pessimistic => Box::new(Pessimistic),
            PolicyKind::Enhanced => Box::new(Enhanced),
            PolicyKind::EnhancedKill => Box::new(EnhancedKill),
            PolicyKind::Custom => panic!("custom policies must be constructed directly"),
        }
    }
}

/// Baseline: restart the crashed component from its pristine post-init image,
/// losing all accumulated state. Models "microreboot" systems that only
/// support stateless recovery (paper §VI, recovery policy 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct Stateless;

impl RecoveryPolicy for Stateless {
    fn name(&self) -> &'static str {
        "stateless"
    }
    fn checkpointing(&self) -> bool {
        false
    }
    fn send_keeps_window_open(&self, _seep: &SeepMeta) -> bool {
        // No windows are maintained; the answer is irrelevant but `true`
        // keeps the (unused) window machinery inert.
        true
    }
    fn reconcile(&self, crash: &CrashContext) -> RecoveryDecision {
        RecoveryDecision::new(RecoveryAction::FreshRestart, crash.reply_possible)
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::Stateless
    }
}

/// Baseline: restart the component but keep its (possibly half-updated)
/// state exactly as it was at the moment of the crash, then send an error
/// reply. Models best-effort recovery with no special handling (paper §VI,
/// recovery policy 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct Naive;

impl RecoveryPolicy for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }
    fn checkpointing(&self) -> bool {
        false
    }
    fn send_keeps_window_open(&self, _seep: &SeepMeta) -> bool {
        true
    }
    fn reconcile(&self, crash: &CrashContext) -> RecoveryDecision {
        RecoveryDecision::new(RecoveryAction::ContinueAsIs, crash.reply_possible)
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::Naive
    }
}

/// OSIRIS pessimistic policy: *sending out any message* closes the recovery
/// window (paper §IV-B). Lowest overhead, smallest recovery surface.
#[derive(Clone, Copy, Debug, Default)]
pub struct Pessimistic;

impl RecoveryPolicy for Pessimistic {
    fn name(&self) -> &'static str {
        "pessimistic"
    }
    fn send_keeps_window_open(&self, _seep: &SeepMeta) -> bool {
        false
    }
    fn reconcile(&self, crash: &CrashContext) -> RecoveryDecision {
        osiris_reconcile(crash)
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::Pessimistic
    }
}

/// OSIRIS enhanced policy (the default): SEEP metadata identifies which
/// interactions actually create dependencies; only state-modifying sends
/// close the window (paper §IV-B).
#[derive(Clone, Copy, Debug, Default)]
pub struct Enhanced;

impl RecoveryPolicy for Enhanced {
    fn name(&self) -> &'static str {
        "enhanced"
    }
    fn send_keeps_window_open(&self, seep: &SeepMeta) -> bool {
        !seep.class.is_state_modifying()
    }
    fn reconcile(&self, crash: &CrashContext) -> RecoveryDecision {
        osiris_reconcile(crash)
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::Enhanced
    }
}

/// The paper's §VII extensibility demonstration: like [`Enhanced`], but
/// *requester-scoped* SEEPs (state changes limited to data owned by the
/// requesting process) also stay inside the recovery window. A crash after
/// such sends is reconciled by **killing the requester**: its exit path
/// cleans up the scoped remote state, restoring global consistency without
/// a shutdown.
#[derive(Clone, Copy, Debug, Default)]
pub struct EnhancedKill;

impl RecoveryPolicy for EnhancedKill {
    fn name(&self) -> &'static str {
        "enhanced-kill"
    }
    fn send_keeps_window_open(&self, seep: &SeepMeta) -> bool {
        matches!(seep.class, crate::seep::SeepClass::NonStateModifying)
            || matches!(seep.class, crate::seep::SeepClass::RequesterScoped)
    }
    fn reconcile(&self, crash: &CrashContext) -> RecoveryDecision {
        if crash.in_recovery_code {
            return RecoveryDecision::new(RecoveryAction::UncontrolledCrash, false);
        }
        if crash.window_open && crash.scoped_sends && crash.requester_is_process {
            // The window stayed open across requester-scoped sends; clean
            // them by killing the requester (no error reply: it is dying).
            return RecoveryDecision::new(RecoveryAction::RollbackAndKillRequester, false);
        }
        if crash.window_open && crash.reply_possible {
            RecoveryDecision::new(RecoveryAction::RollbackAndErrorReply, true)
        } else {
            RecoveryDecision::new(RecoveryAction::ControlledShutdown, false)
        }
    }
    fn kind(&self) -> PolicyKind {
        PolicyKind::EnhancedKill
    }
}

/// The common OSIRIS reconciliation rule (paper §IV-C): if the window was
/// open at crash time and the failure-triggering request can be error-replied,
/// roll back and virtualize the error; otherwise perform a controlled
/// shutdown — never attempt recovery that could leave the system
/// inconsistent.
fn osiris_reconcile(crash: &CrashContext) -> RecoveryDecision {
    if crash.in_recovery_code {
        // A second fault inside recovery violates the single-fault model;
        // there is nothing consistent left to restore.
        return RecoveryDecision::new(RecoveryAction::UncontrolledCrash, false);
    }
    if crash.window_open && crash.reply_possible {
        RecoveryDecision::new(RecoveryAction::RollbackAndErrorReply, true)
    } else {
        RecoveryDecision::new(RecoveryAction::ControlledShutdown, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seep::{SeepClass, SeepMeta};

    fn ctx(window_open: bool, reply_possible: bool) -> CrashContext {
        CrashContext {
            window_open,
            reply_possible,
            in_recovery_code: false,
            scoped_sends: false,
            requester_is_process: true,
        }
    }

    #[test]
    fn pessimistic_closes_on_any_send() {
        let p = Pessimistic;
        assert!(!p.send_keeps_window_open(&SeepMeta::request(SeepClass::NonStateModifying)));
        assert!(!p.send_keeps_window_open(&SeepMeta::notification(SeepClass::NonStateModifying)));
    }

    #[test]
    fn enhanced_allows_read_only_sends() {
        let p = Enhanced;
        assert!(p.send_keeps_window_open(&SeepMeta::request(SeepClass::NonStateModifying)));
        assert!(!p.send_keeps_window_open(&SeepMeta::request(SeepClass::StateModifying)));
    }

    #[test]
    fn osiris_policies_shutdown_when_window_closed() {
        for p in [PolicyKind::Pessimistic, PolicyKind::Enhanced] {
            let p = p.instantiate();
            let d = p.reconcile(&ctx(false, true));
            assert_eq!(d.action, RecoveryAction::ControlledShutdown, "{}", p.name());
        }
    }

    #[test]
    fn osiris_policies_recover_in_open_window() {
        for p in [PolicyKind::Pessimistic, PolicyKind::Enhanced] {
            let p = p.instantiate();
            let d = p.reconcile(&ctx(true, true));
            assert_eq!(
                d.action,
                RecoveryAction::RollbackAndErrorReply,
                "{}",
                p.name()
            );
            assert!(d.error_reply);
        }
    }

    #[test]
    fn osiris_policies_shutdown_when_no_reply_possible() {
        let d = Enhanced.reconcile(&ctx(true, false));
        assert_eq!(d.action, RecoveryAction::ControlledShutdown);
    }

    #[test]
    fn fault_in_recovery_code_is_fatal() {
        let d = Enhanced.reconcile(&CrashContext {
            window_open: true,
            reply_possible: true,
            in_recovery_code: true,
            scoped_sends: false,
            requester_is_process: true,
        });
        assert_eq!(d.action, RecoveryAction::UncontrolledCrash);
    }

    #[test]
    fn enhanced_kill_reconciles_scoped_windows_by_killing() {
        use crate::seep::SeepClass;
        let p = EnhancedKill;
        assert!(p.send_keeps_window_open(&SeepMeta::notification(SeepClass::RequesterScoped)));
        assert!(!p.send_keeps_window_open(&SeepMeta::request(SeepClass::StateModifying)));
        let d = p.reconcile(&CrashContext {
            window_open: true,
            reply_possible: false,
            in_recovery_code: false,
            scoped_sends: true,
            requester_is_process: true,
        });
        assert_eq!(d.action, RecoveryAction::RollbackAndKillRequester);
        // Without scoped sends it behaves exactly like Enhanced.
        let d = p.reconcile(&ctx(true, true));
        assert_eq!(d.action, RecoveryAction::RollbackAndErrorReply);
        // A non-process requester cannot be killed: fall back to shutdown.
        let d = p.reconcile(&CrashContext {
            window_open: true,
            reply_possible: false,
            in_recovery_code: false,
            scoped_sends: true,
            requester_is_process: false,
        });
        assert_eq!(d.action, RecoveryAction::ControlledShutdown);
    }

    #[test]
    fn baselines_do_not_checkpoint() {
        assert!(!Stateless.checkpointing());
        assert!(!Naive.checkpointing());
        assert!(Pessimistic.checkpointing());
        assert!(Enhanced.checkpointing());
    }

    #[test]
    fn baseline_reconciliation() {
        let d = Stateless.reconcile(&ctx(false, true));
        assert_eq!(d.action, RecoveryAction::FreshRestart);
        assert!(d.error_reply);
        let d = Naive.reconcile(&ctx(false, false));
        assert_eq!(d.action, RecoveryAction::ContinueAsIs);
        assert!(!d.error_reply);
    }

    #[test]
    fn kind_roundtrip_and_display() {
        for k in PolicyKind::STANDARD {
            assert_eq!(k.instantiate().kind(), k);
        }
        assert_eq!(PolicyKind::Enhanced.to_string(), "enhanced");
    }
}
