//! The OSIRIS recovery framework.
//!
//! This crate is the Rust reproduction of the *primary contribution* of
//! "OSIRIS: Efficient and Consistent Recovery of Compartmentalized Operating
//! Systems" (Bhat et al., DSN 2016): a recovery strategy for fault-isolated,
//! message-passing OS components that guarantees **globally consistent**
//! recovery *without* runtime dependency tracking, by restricting recovery to
//! statically provable **safe recovery windows**.
//!
//! The framework is deliberately independent of any particular message
//! substrate (paper §VII, "Generality of the framework"): it can be wired
//! into any compartmentalized system whose components are event-driven and
//! restartable. The `osiris-kernel` crate wires it into a microkernel
//! simulator; the integration surface is small:
//!
//! * Every inter-component channel is a **SEEP** (Side Effect Engraved
//!   Passage): outgoing messages carry static [`SeepMeta`] describing whether
//!   they modify the receiver's state and whether an error reply is possible.
//! * Each component owns a [`RecoveryWindow`]: it opens (taking a checkpoint
//!   on the component's [`osiris_checkpoint::Heap`]) when a request is
//!   received, and closes at the first outgoing message the active
//!   [`RecoveryPolicy`] does not allow.
//! * On a crash, [`decide_recovery`] maps the window state and the crashed
//!   request's metadata to a [`RecoveryDecision`]: roll back and virtualize
//!   the error (`E_CRASH` to the requester — this also handles *persistent*
//!   faults), restart fresh / continue (baseline policies), or perform a
//!   **controlled shutdown** when consistency cannot be guaranteed.
//!
//! # Example: a minimal retrofit
//!
//! ```
//! use osiris_checkpoint::Heap;
//! use osiris_core::{
//!     decide_recovery, CrashContext, Enhanced, RecoveryAction, RecoveryWindow,
//!     SeepClass, SeepMeta,
//! };
//!
//! let mut heap = Heap::new("component");
//! let state = heap.alloc_cell("state", 0u64);
//! let policy = Enhanced;
//! let mut window = RecoveryWindow::new();
//!
//! // A request arrives: open the window (checkpoint).
//! window.open(&mut heap);
//! state.set(&mut heap, 7);
//!
//! // The handler sends a read-only query: enhanced policy keeps the window open.
//! window.on_send(&policy, &SeepMeta::request(SeepClass::NonStateModifying), &mut heap);
//! assert!(window.is_open());
//!
//! // The handler crashes; decide what to do.
//! let decision = decide_recovery(
//!     &policy,
//!     &CrashContext {
//!         window_open: window.is_open(),
//!         reply_possible: true,
//!         in_recovery_code: false,
//!         scoped_sends: window.had_scoped_sends(),
//!         requester_is_process: true,
//!     },
//! );
//! assert_eq!(decision.action, RecoveryAction::RollbackAndErrorReply);
//!
//! // Roll back: the component is again in its top-of-loop state.
//! window.rollback(&mut heap);
//! assert_eq!(state.get(&heap), 0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod escalation;
mod policy;
mod recovery;
mod seep;
mod window;

pub use escalation::{EscalationPolicy, EscalationStep, RestartBudget};
pub use policy::{
    Enhanced, EnhancedKill, Naive, Pessimistic, PolicyKind, RecoveryPolicy, Stateless,
};
pub use recovery::{
    decide_recovery, fallback_action, CrashContext, RecoveryAction, RecoveryDecision, RecoveryPhase,
};
pub use seep::{MessageKind, SeepClass, SeepMeta};
pub use window::{CloseReason, RecoveryWindow, WindowStats};
