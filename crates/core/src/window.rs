//! The per-component recovery-window state machine.
//!
//! A recovery window starts at the top of the request-processing loop (a
//! checkpoint is taken) and spans the instructions that may be rolled back
//! without affecting global consistency. It closes at the first outgoing
//! message the active policy disallows, or when a cooperative thread yields
//! (paper §IV-B, §IV-E). While the window is open the component's heap logs
//! every write; when it closes the log is discarded and logging stops — the
//! paper's key overhead optimization.

use osiris_checkpoint::{Heap, Mark};
use osiris_trace::{CloseCode, SeepClassCode, TraceEvent};

use crate::policy::RecoveryPolicy;
use crate::seep::SeepMeta;

/// Why a recovery window was closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CloseReason {
    /// An outgoing message the policy disallows inside a window.
    DisallowedSend,
    /// A cooperative thread yielded (multithreaded servers, §IV-E).
    ThreadYield,
    /// Explicitly closed by the component or runtime.
    Manual,
}

impl From<CloseReason> for CloseCode {
    fn from(r: CloseReason) -> CloseCode {
        match r {
            CloseReason::DisallowedSend => CloseCode::DisallowedSend,
            CloseReason::ThreadYield => CloseCode::ThreadYield,
            CloseReason::Manual => CloseCode::Manual,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// No request is being processed.
    Idle,
    /// Window open since the mark was taken; rollback is safe.
    Open(Mark),
    /// A request is being processed but the window has closed; recovery
    /// would be unsafe.
    Closed(CloseReason),
}

use crate::seep::SeepClass;

/// Counters backing the recovery-coverage experiment (Table I).
///
/// `cycles_in`/`cycles_out` accumulate virtual execution cost attributed to
/// inside/outside open windows; `sites_in`/`sites_out` count executed
/// instrumentation sites (the basic-block analog).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Times a window was opened.
    pub opens: u64,
    /// Times a window closed due to a disallowed send.
    pub closed_by_send: u64,
    /// Times a window closed due to a thread yield.
    pub closed_by_yield: u64,
    /// Times a window closed manually.
    pub closed_manually: u64,
    /// Virtual cycles spent while a window was open.
    pub cycles_in: u64,
    /// Virtual cycles spent while no window was open.
    pub cycles_out: u64,
    /// Instrumentation sites executed inside open windows.
    pub sites_in: u64,
    /// Instrumentation sites executed outside open windows.
    pub sites_out: u64,
    /// Rollbacks performed through this window.
    pub rollbacks: u64,
}

impl WindowStats {
    /// Recovery coverage: fraction of execution spent inside open windows,
    /// by instrumentation sites (the paper's basic-block metric).
    pub fn coverage_by_sites(&self) -> f64 {
        let total = self.sites_in + self.sites_out;
        if total == 0 {
            return 0.0;
        }
        self.sites_in as f64 / total as f64
    }

    /// Recovery coverage weighted by virtual cycles.
    pub fn coverage_by_cycles(&self) -> f64 {
        let total = self.cycles_in + self.cycles_out;
        if total == 0 {
            return 0.0;
        }
        self.cycles_in as f64 / total as f64
    }
}

/// The recovery window of one component (or one cooperative thread).
/// `Clone` exists for the kernel's fork-snapshot path, which captures the
/// window state verbatim (all fields are plain `Copy` data).
#[derive(Clone, Debug)]
pub struct RecoveryWindow {
    state: State,
    stats: WindowStats,
    scoped_sends: bool,
    /// The close that ended the current/most recent window, staged for the
    /// kernel to seal into the axiom log (the kernel is the axiom's single
    /// writer; the window only records what happened).
    last_close: Option<(CloseCode, SeepClassCode)>,
}

impl Default for RecoveryWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl RecoveryWindow {
    /// Creates a window in the idle state.
    pub fn new() -> Self {
        RecoveryWindow {
            state: State::Idle,
            stats: WindowStats::default(),
            scoped_sends: false,
            last_close: None,
        }
    }

    /// Takes the staged record of how the current/most recent window
    /// closed, if it has not been consumed yet. The kernel drains this
    /// after each handler (and after recovery's rollback/complete) to emit
    /// the authoritative `WindowClose` axiom event.
    pub fn take_last_close(&mut self) -> Option<(CloseCode, SeepClassCode)> {
        self.last_close.take()
    }

    /// Whether the current window saw requester-scoped sends the policy
    /// allowed to stay open (input to the kill-requester reconciliation).
    pub fn had_scoped_sends(&self) -> bool {
        self.scoped_sends
    }

    /// Whether the window is currently open (rollback is safe).
    pub fn is_open(&self) -> bool {
        matches!(self.state, State::Open(_))
    }

    /// Whether a request is being processed with the window closed.
    pub fn is_closed(&self) -> bool {
        matches!(self.state, State::Closed(_))
    }

    /// Opens a new window: discards any stale log, enables write logging and
    /// takes a checkpoint. Called at the top of the request loop for every
    /// incoming request.
    pub fn open(&mut self, heap: &mut Heap) {
        heap.discard_log();
        heap.set_logging(true);
        self.state = State::Open(heap.mark());
        self.scoped_sends = false;
        self.last_close = None;
        self.stats.opens += 1;
        heap.trace_emit(TraceEvent::WindowOpen);
    }

    /// Begins processing a request *without* opening a window (baseline
    /// policies that do no checkpointing). Write logging stays off.
    pub fn begin_unprotected(&mut self) {
        self.state = State::Closed(CloseReason::Manual);
        self.last_close = None;
    }

    /// Notifies the window of an outgoing message; closes it if the policy
    /// disallows the send inside a window.
    pub fn on_send(&mut self, policy: &dyn RecoveryPolicy, seep: &SeepMeta, heap: &mut Heap) {
        if !self.is_open() {
            return;
        }
        if !policy.send_keeps_window_open(seep) {
            self.close_traced(heap, CloseReason::DisallowedSend, seep.class.into());
        } else if seep.class == SeepClass::RequesterScoped {
            self.scoped_sends = true;
        }
    }

    /// Forcibly closes the window (thread yield, manual close). No-op if the
    /// window is not open.
    pub fn close(&mut self, heap: &mut Heap, reason: CloseReason) {
        self.close_traced(heap, reason, SeepClassCode::None);
    }

    /// Close with the SEEP class that forced it, recorded in the trace.
    fn close_traced(&mut self, heap: &mut Heap, reason: CloseReason, class: SeepClassCode) {
        if !self.is_open() {
            return;
        }
        heap.set_logging(false);
        heap.discard_log();
        self.state = State::Closed(reason);
        match reason {
            CloseReason::DisallowedSend => self.stats.closed_by_send += 1,
            CloseReason::ThreadYield => self.stats.closed_by_yield += 1,
            CloseReason::Manual => self.stats.closed_manually += 1,
        }
        self.last_close = Some((reason.into(), class));
        heap.trace_emit(TraceEvent::WindowClose {
            reason: reason.into(),
            class,
        });
    }

    /// Finishes processing a request normally: the checkpoint is no longer
    /// needed, so the log is discarded and the window returns to idle.
    pub fn complete(&mut self, heap: &mut Heap) {
        let was_open = self.is_open();
        heap.set_logging(false);
        heap.discard_log();
        self.state = State::Idle;
        self.scoped_sends = false;
        if was_open {
            // Mid-handler closes already recorded their own WindowClose.
            self.last_close = Some((CloseCode::Completed, SeepClassCode::None));
            heap.trace_emit(TraceEvent::WindowClose {
                reason: CloseCode::Completed,
                class: SeepClassCode::None,
            });
        }
    }

    /// Rolls the heap back to the checkpoint taken when the window opened
    /// and returns to the idle state.
    ///
    /// # Panics
    ///
    /// Panics if the window is not open — callers must consult
    /// [`decide_recovery`](crate::decide_recovery) first; attempting to roll
    /// back past a closed window is exactly the unsafe recovery OSIRIS
    /// refuses to perform.
    pub fn rollback(&mut self, heap: &mut Heap) {
        match self.state {
            State::Open(mark) => {
                heap.rollback_to(mark);
                heap.set_logging(false);
                self.state = State::Idle;
                self.stats.rollbacks += 1;
                self.last_close = Some((CloseCode::Rollback, SeepClassCode::None));
                heap.trace_emit(TraceEvent::WindowClose {
                    reason: CloseCode::Rollback,
                    class: SeepClassCode::None,
                });
            }
            _ => panic!("rollback requested while recovery window is not open"),
        }
    }

    /// Attributes `cycles` of virtual execution cost to the current window
    /// state (for Table I's coverage metric).
    pub fn charge(&mut self, cycles: u64) {
        if self.is_open() {
            self.stats.cycles_in += cycles;
        } else {
            self.stats.cycles_out += cycles;
        }
    }

    /// Attributes already-split cycle costs directly to the in-window and
    /// out-of-window counters. Used by runtimes that account memory-write
    /// costs after a handler returns: logged writes happened inside the
    /// window, unlogged ones outside.
    pub fn charge_split(&mut self, in_cycles: u64, out_cycles: u64) {
        self.stats.cycles_in += in_cycles;
        self.stats.cycles_out += out_cycles;
    }

    /// Records execution of one instrumentation site (basic-block analog).
    pub fn tick_site(&mut self) {
        if self.is_open() {
            self.stats.sites_in += 1;
        } else {
            self.stats.sites_out += 1;
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &WindowStats {
        &self.stats
    }

    /// Resets statistics (state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = WindowStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Enhanced, Pessimistic};
    use crate::seep::{SeepClass, SeepMeta};

    #[test]
    fn open_close_complete_lifecycle() {
        let mut heap = Heap::new("t");
        let c = heap.alloc_cell("x", 0u32);
        let mut w = RecoveryWindow::new();
        assert!(!w.is_open());
        w.open(&mut heap);
        assert!(w.is_open());
        assert!(heap.logging());
        c.set(&mut heap, 1);
        w.complete(&mut heap);
        assert!(!w.is_open());
        assert!(!heap.logging());
        assert_eq!(heap.log_len(), 0);
        assert_eq!(c.get(&heap), 1);
    }

    #[test]
    fn pessimistic_send_closes_window() {
        let mut heap = Heap::new("t");
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        w.on_send(
            &Pessimistic,
            &SeepMeta::request(SeepClass::NonStateModifying),
            &mut heap,
        );
        assert!(w.is_closed());
        assert_eq!(w.stats().closed_by_send, 1);
        assert!(!heap.logging());
    }

    #[test]
    fn enhanced_keeps_window_open_on_read_only_send() {
        let mut heap = Heap::new("t");
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        w.on_send(
            &Enhanced,
            &SeepMeta::request(SeepClass::NonStateModifying),
            &mut heap,
        );
        assert!(w.is_open());
        w.on_send(
            &Enhanced,
            &SeepMeta::request(SeepClass::StateModifying),
            &mut heap,
        );
        assert!(w.is_closed());
    }

    #[test]
    fn rollback_restores_checkpoint() {
        let mut heap = Heap::new("t");
        let c = heap.alloc_cell("x", 10u32);
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        c.set(&mut heap, 11);
        c.set(&mut heap, 12);
        w.rollback(&mut heap);
        assert_eq!(c.get(&heap), 10);
        assert_eq!(w.stats().rollbacks, 1);
    }

    #[test]
    #[should_panic(expected = "not open")]
    fn rollback_with_closed_window_panics() {
        let mut heap = Heap::new("t");
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        w.close(&mut heap, CloseReason::Manual);
        w.rollback(&mut heap);
    }

    #[test]
    fn charge_and_sites_attribute_by_state() {
        let mut heap = Heap::new("t");
        let mut w = RecoveryWindow::new();
        w.charge(5);
        w.tick_site();
        w.open(&mut heap);
        w.charge(10);
        w.tick_site();
        w.tick_site();
        w.close(&mut heap, CloseReason::ThreadYield);
        w.charge(3);
        let s = w.stats();
        assert_eq!(s.cycles_in, 10);
        assert_eq!(s.cycles_out, 8);
        assert_eq!(s.sites_in, 2);
        assert_eq!(s.sites_out, 1);
        assert_eq!(s.closed_by_yield, 1);
        assert!((s.coverage_by_sites() - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.coverage_by_cycles() - 10.0 / 18.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_of_empty_stats_is_zero() {
        let s = WindowStats::default();
        assert_eq!(s.coverage_by_sites(), 0.0);
        assert_eq!(s.coverage_by_cycles(), 0.0);
    }

    #[test]
    fn reopen_discards_stale_log() {
        let mut heap = Heap::new("t");
        let c = heap.alloc_cell("x", 0u32);
        let mut w = RecoveryWindow::new();
        w.open(&mut heap);
        c.set(&mut heap, 1);
        // Crash-free completion is skipped; a new request arrives.
        w.open(&mut heap);
        assert_eq!(heap.log_len(), 0);
        c.set(&mut heap, 2);
        w.rollback(&mut heap);
        // Rolls back to the *second* checkpoint, not the first.
        assert_eq!(c.get(&heap), 1);
    }
}
