//! Recovery escalation: crash-loop detection and the restart ladder.
//!
//! OSIRIS (§IV-C, §VII) recovers a *single* crash cleanly, but a component
//! with a persistent fault on a hot path crashes again immediately after
//! every restart. Left alone, the recovery server restarts it forever and
//! the whole workload livelocks. This module supplies the policy half of
//! the fix — pure functions over the virtual clock, so every decision is
//! deterministic and replayable:
//!
//! * [`RestartBudget`] — a sliding-window crash-loop detector. Each restart
//!   is recorded with its virtual timestamp; restarts older than the window
//!   expire. The count of restarts inside the window is the *pressure* the
//!   ladder reacts to.
//! * [`EscalationPolicy`] — maps pressure to an [`EscalationStep`]:
//!   restart (with exponential backoff once the component is visibly
//!   looping), then quarantine, then controlled shutdown when too many
//!   components are already benched.
//!
//! The mechanism half (arming backoff timers, flipping a component to the
//! `Quarantined` status, bouncing its messages) lives in the kernel and the
//! recovery server; they call into this module and never consult wall time.
//! Each ladder decision the kernel executes is sealed into the axiom as an
//! `EscalationStep` (and quarantines as `Quarantined`) event, so the
//! ladder's whole history is part of the authoritative, replayable record.

/// Sliding-window restart counter: the crash-loop detector.
///
/// The caller owns the history (a plain `Vec<u64>` of virtual timestamps,
/// typically stored in the recovery server's checkpointed heap) so the
/// budget itself stays `Copy` and trivially shareable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartBudget {
    /// Window length in virtual cycles. Restarts older than this no longer
    /// count against the budget. A zero window disables the detector:
    /// every observation sees a pressure of exactly 1.
    pub window: u64,
    /// Restarts tolerated inside one window before the ladder escalates
    /// past restarting.
    pub max_restarts: u32,
}

impl RestartBudget {
    /// Records a restart at virtual time `now` and returns the number of
    /// restarts inside the window (including this one).
    ///
    /// Expired entries are pruned from `history` in place, so the vector
    /// never grows beyond the restarts of one window (plus one).
    pub fn observe(&self, history: &mut Vec<u64>, now: u64) -> u32 {
        history.retain(|&t| now.saturating_sub(t) < self.window);
        history.push(now);
        history.len() as u32
    }

    /// The restarts still inside the window at virtual time `now`, without
    /// recording a new one.
    pub fn pressure(&self, history: &[u64], now: u64) -> u32 {
        history
            .iter()
            .filter(|&&t| now.saturating_sub(t) < self.window)
            .count() as u32
    }
}

impl Default for RestartBudget {
    fn default() -> Self {
        RestartBudget {
            window: 20_000_000,
            max_restarts: 8,
        }
    }
}

/// The next rung of the escalation ladder for one crashed component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EscalationStep {
    /// Recover the component (rollback / fresh restart per the recovery
    /// policy), after waiting `backoff` virtual cycles. A backoff of zero
    /// means recover immediately — the normal single-crash path.
    Restart {
        /// Virtual cycles to wait before issuing the recovery.
        backoff: u64,
    },
    /// Bench the component: no further restarts; messages to it are
    /// bounced with an immediate crash reply.
    Quarantine,
    /// Too much of the system is benched — shut down in a controlled way.
    Shutdown,
}

/// The escalation ladder: restart budget + backoff curve + quarantine cap.
///
/// All fields are plain numbers so the policy is `Copy` and can be embedded
/// in configuration structs; [`decide`](EscalationPolicy::decide) is a pure
/// function of its arguments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EscalationPolicy {
    /// Sliding-window crash-loop detector.
    pub budget: RestartBudget,
    /// Backoff before the *second* restart in a window; doubles on each
    /// further restart.
    pub backoff_base: u64,
    /// Cap on the exponential backoff.
    pub backoff_max: u64,
    /// Components that may be quarantined before the ladder escalates to
    /// controlled shutdown instead.
    pub max_quarantined: u32,
}

impl Default for EscalationPolicy {
    fn default() -> Self {
        EscalationPolicy {
            budget: RestartBudget::default(),
            backoff_base: 25_000,
            backoff_max: 400_000,
            max_quarantined: 2,
        }
    }
}

impl EscalationPolicy {
    /// A policy that never escalates: every crash recovers immediately,
    /// forever — the pre-escalation behaviour, used by experiments that
    /// deliberately crash a component periodically for the whole run.
    ///
    /// Implemented as a zero-length window (every observation sees a
    /// pressure of 1, below any positive budget), so the restart history
    /// also stays bounded.
    pub fn unbounded() -> Self {
        EscalationPolicy {
            budget: RestartBudget {
                window: 0,
                max_restarts: 1,
            },
            backoff_base: 0,
            backoff_max: 0,
            max_quarantined: u32::MAX,
        }
    }

    /// Backoff (in virtual cycles) before restart number `n` of the current
    /// window. The first restart is free — single crashes recover at full
    /// speed — then the delay doubles from [`backoff_base`] up to
    /// [`backoff_max`].
    ///
    /// [`backoff_base`]: EscalationPolicy::backoff_base
    /// [`backoff_max`]: EscalationPolicy::backoff_max
    pub fn backoff_for(&self, n: u32) -> u64 {
        if n <= 1 {
            return 0;
        }
        let doublings = (n - 2).min(16);
        self.backoff_base
            .saturating_mul(1u64 << doublings)
            .min(self.backoff_max)
    }

    /// The ladder: given `restarts_in_window` (the value
    /// [`RestartBudget::observe`] returned for this crash) and how many
    /// components are already quarantined system-wide, pick the next step.
    pub fn decide(&self, restarts_in_window: u32, quarantined: u32) -> EscalationStep {
        if restarts_in_window <= self.budget.max_restarts {
            EscalationStep::Restart {
                backoff: self.backoff_for(restarts_in_window),
            }
        } else if quarantined < self.max_quarantined {
            EscalationStep::Quarantine
        } else {
            EscalationStep::Shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_prunes_old_restarts() {
        let b = RestartBudget {
            window: 100,
            max_restarts: 3,
        };
        let mut h = Vec::new();
        assert_eq!(b.observe(&mut h, 0), 1);
        assert_eq!(b.observe(&mut h, 50), 2);
        // t=0 entry has aged out (100 - 0 >= window).
        assert_eq!(b.observe(&mut h, 100), 2);
        assert_eq!(h, vec![50, 100]);
        // Far future: everything expires.
        assert_eq!(b.observe(&mut h, 10_000), 1);
        assert_eq!(h, vec![10_000]);
    }

    #[test]
    fn zero_window_never_accumulates() {
        let b = RestartBudget {
            window: 0,
            max_restarts: 1,
        };
        let mut h = Vec::new();
        for t in 0..50u64 {
            assert_eq!(b.observe(&mut h, t), 1);
        }
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn backoff_curve_is_capped_exponential() {
        let p = EscalationPolicy {
            backoff_base: 1_000,
            backoff_max: 6_000,
            ..EscalationPolicy::default()
        };
        assert_eq!(p.backoff_for(1), 0);
        assert_eq!(p.backoff_for(2), 1_000);
        assert_eq!(p.backoff_for(3), 2_000);
        assert_eq!(p.backoff_for(4), 4_000);
        assert_eq!(p.backoff_for(5), 6_000); // capped
        assert_eq!(p.backoff_for(60), 6_000); // shift stays bounded
    }

    #[test]
    fn ladder_steps_restart_quarantine_shutdown() {
        let p = EscalationPolicy {
            budget: RestartBudget {
                window: 1_000,
                max_restarts: 2,
            },
            backoff_base: 10,
            backoff_max: 100,
            max_quarantined: 1,
        };
        assert_eq!(p.decide(1, 0), EscalationStep::Restart { backoff: 0 });
        assert_eq!(p.decide(2, 0), EscalationStep::Restart { backoff: 10 });
        assert_eq!(p.decide(3, 0), EscalationStep::Quarantine);
        assert_eq!(p.decide(3, 1), EscalationStep::Shutdown);
    }

    #[test]
    fn unbounded_policy_always_restarts_immediately() {
        let p = EscalationPolicy::unbounded();
        let mut h = Vec::new();
        for t in 0..1_000u64 {
            let n = p.budget.observe(&mut h, t);
            assert_eq!(p.decide(n, 0), EscalationStep::Restart { backoff: 0 });
        }
        assert!(h.len() <= 1);
    }
}
