//! Randomized properties: rollback restores arbitrary mutation sequences
//! exactly. Driven by the in-tree deterministic PRNG (`osiris-rng`), so the
//! suite needs no external dependencies and every failure is reproducible
//! from the printed case seed.

use std::collections::BTreeMap;

use osiris_checkpoint::Heap;
use osiris_rng::Rng;

const CASES: u64 = 128;

/// One random mutation against a small state universe of a cell, a vec, a
/// map and a buffer.
#[derive(Clone, Debug)]
enum Op {
    CellSet(u64),
    VecPush(u16),
    VecPop,
    VecSet(u8, u16),
    VecTruncate(u8),
    MapInsert(u8, u64),
    MapRemove(u8),
    MapUpdate(u8, u64),
    BufWrite(u8, Vec<u8>),
    BufTruncate(u8),
}

fn gen_op(r: &mut Rng) -> Op {
    match r.below(10) {
        0 => Op::CellSet(r.next_u64()),
        1 => Op::VecPush(r.next_u64() as u16),
        2 => Op::VecPop,
        3 => Op::VecSet(r.byte(), r.next_u64() as u16),
        4 => Op::VecTruncate(r.byte()),
        5 => Op::MapInsert(r.byte(), r.next_u64()),
        6 => Op::MapRemove(r.byte()),
        7 => Op::MapUpdate(r.byte(), r.next_u64()),
        8 => {
            let len = r.below_usize(32);
            Op::BufWrite(r.byte(), r.bytes(len))
        }
        _ => Op::BufTruncate(r.byte()),
    }
}

fn gen_ops(r: &mut Rng, max: usize) -> Vec<Op> {
    let n = r.below_usize(max);
    (0..n).map(|_| gen_op(r)).collect()
}

struct World {
    cell: osiris_checkpoint::PCell<u64>,
    vec: osiris_checkpoint::PVec<u16>,
    map: osiris_checkpoint::PMap<u8, u64>,
    buf: osiris_checkpoint::PBuf,
}

fn build_world(heap: &mut Heap) -> World {
    World {
        cell: heap.alloc_cell("cell", 0),
        vec: heap.alloc_vec("vec"),
        map: heap.alloc_map("map"),
        buf: heap.alloc_buf("buf"),
    }
}

fn apply(heap: &mut Heap, w: &World, op: &Op) {
    match op {
        Op::CellSet(v) => w.cell.set(heap, *v),
        Op::VecPush(v) => w.vec.push(heap, *v),
        Op::VecPop => {
            w.vec.pop(heap);
        }
        Op::VecSet(i, v) => {
            let len = w.vec.len(heap);
            if len > 0 {
                w.vec.set(heap, *i as usize % len, *v);
            }
        }
        Op::VecTruncate(n) => w.vec.truncate(heap, *n as usize),
        Op::MapInsert(k, v) => {
            w.map.insert(heap, *k, *v);
        }
        Op::MapRemove(k) => {
            w.map.remove(heap, k);
        }
        Op::MapUpdate(k, v) => {
            w.map.update(heap, k, |x| *x = x.wrapping_add(*v));
        }
        Op::BufWrite(o, b) => w.buf.write_at(heap, *o as usize, b),
        Op::BufTruncate(n) => w.buf.truncate(heap, *n as usize),
    }
}

#[derive(Debug, PartialEq)]
struct Snapshot {
    cell: u64,
    vec: Vec<u16>,
    map: BTreeMap<u8, u64>,
    buf: Vec<u8>,
}

fn snapshot(heap: &Heap, w: &World) -> Snapshot {
    Snapshot {
        cell: w.cell.get(heap),
        vec: w.vec.snapshot(heap),
        map: w.map.snapshot(heap),
        buf: w.buf.snapshot(heap),
    }
}

/// Any prefix of mutations, then a mark, then any suffix: rollback to the
/// mark restores the exact post-prefix state.
#[test]
fn rollback_restores_exact_state() {
    for case in 0..CASES {
        let mut r = Rng::new(0x5EED_0001 ^ case);
        let prefix = gen_ops(&mut r, 40);
        let suffix = gen_ops(&mut r, 40);
        let mut heap = Heap::new("prop");
        let w = build_world(&mut heap);
        heap.set_logging(true);
        for op in &prefix {
            apply(&mut heap, &w, op);
        }
        let expected = snapshot(&heap, &w);
        let mark = heap.mark();
        for op in &suffix {
            apply(&mut heap, &w, op);
        }
        heap.rollback_to(mark);
        assert_eq!(snapshot(&heap, &w), expected, "case seed {case}");
    }
}

/// Rollback to the very beginning always restores the initial state, and
/// leaves an empty log.
#[test]
fn rollback_to_origin() {
    for case in 0..CASES {
        let mut r = Rng::new(0x5EED_0002 ^ case);
        let ops = gen_ops(&mut r, 80);
        let mut heap = Heap::new("prop");
        let w = build_world(&mut heap);
        let initial = snapshot(&heap, &w);
        heap.set_logging(true);
        let mark = heap.mark();
        for op in &ops {
            apply(&mut heap, &w, op);
        }
        heap.rollback_to(mark);
        assert_eq!(snapshot(&heap, &w), initial, "case seed {case}");
        assert_eq!(heap.log_len(), 0);
        assert_eq!(heap.log_bytes(), 0);
    }
}

/// A heap image equals the state it was taken from, regardless of later
/// mutations.
#[test]
fn image_roundtrip() {
    for case in 0..CASES {
        let mut r = Rng::new(0x5EED_0003 ^ case);
        let before = gen_ops(&mut r, 40);
        let after = gen_ops(&mut r, 40);
        let mut heap = Heap::new("prop");
        let w = build_world(&mut heap);
        for op in &before {
            apply(&mut heap, &w, op);
        }
        let expected = snapshot(&heap, &w);
        let mut store = osiris_checkpoint::ChunkStore::new();
        let image = heap.clone_image(&mut store, None);
        for op in &after {
            apply(&mut heap, &w, op);
        }
        heap.restore_image(&image, &store).expect("restore");
        assert_eq!(snapshot(&heap, &w), expected, "case seed {case}");
        image.release(&mut store);
        assert!(store.is_empty(), "case seed {case}: refs leaked");
    }
}

/// With logging off, no undo state accumulates no matter what runs.
#[test]
fn no_logging_no_log() {
    for case in 0..CASES {
        let mut r = Rng::new(0x5EED_0004 ^ case);
        let ops = gen_ops(&mut r, 80);
        let mut heap = Heap::new("prop");
        let w = build_world(&mut heap);
        heap.set_logging(false);
        for op in &ops {
            apply(&mut heap, &w, op);
        }
        assert_eq!(heap.log_len(), 0, "case seed {case}");
        assert_eq!(heap.stats().undo_appends, 0);
        assert_eq!(heap.stats().coalesced_writes, 0);
    }
}
