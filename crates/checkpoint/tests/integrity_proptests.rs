//! Randomized integrity properties: the journal digest chain detects any
//! single bit flip (arena payload or record header) and any torn tail, and
//! heap-image verification detects digest corruption. Driven by the in-tree
//! deterministic PRNG (`osiris-rng`) so every failure reproduces from the
//! printed case seed.

use osiris_checkpoint::{Heap, IntegrityError, PBuf, PCell, PMap, PVec};
use osiris_rng::Rng;

const CASES: u64 = 96;
const FLIPS_PER_CASE: usize = 16;

struct World {
    cell: PCell<u64>,
    vec: PVec<u16>,
    map: PMap<u8, u64>,
    buf: PBuf,
}

fn build_world(heap: &mut Heap) -> World {
    World {
        cell: heap.alloc_cell("cell", 0),
        vec: heap.alloc_vec("vec"),
        map: heap.alloc_map("map"),
        buf: heap.alloc_buf("buf"),
    }
}

/// Applies a random mutation drawn from the same universe as the rollback
/// property suite; every arm appends at least one typed undo record the
/// first time it touches a location.
fn apply_random(heap: &mut Heap, w: &World, r: &mut Rng) {
    match r.below(8) {
        0 => w.cell.set(heap, r.next_u64()),
        1 => w.vec.push(heap, r.next_u64() as u16),
        2 => {
            w.vec.pop(heap);
        }
        3 => {
            w.map.insert(heap, r.byte(), r.next_u64());
        }
        4 => {
            w.map.remove(heap, &r.byte());
        }
        5 => {
            let len = r.below_usize(24);
            let bytes = r.bytes(len);
            w.buf.write_at(heap, r.byte() as usize, &bytes);
        }
        6 => w.buf.truncate(heap, r.byte() as usize),
        _ => w.vec.truncate(heap, r.byte() as usize),
    }
}

/// Builds a heap with logging on and a guaranteed non-empty undo journal.
fn populated_heap(r: &mut Rng) -> (Heap, World) {
    let mut heap = Heap::new("integ");
    let w = build_world(&mut heap);
    heap.set_logging(true);
    // One deterministic mutation so the journal is never empty, then noise.
    w.cell.set(&mut heap, 1);
    let n = 1 + r.below_usize(60);
    for _ in 0..n {
        apply_random(&mut heap, &w, r);
    }
    (heap, w)
}

/// Flipping any single arena payload bit is detected, and flipping it back
/// restores a verifiable journal with the original digest.
#[test]
fn arena_bit_flips_detected_and_reversible() {
    for case in 0..CASES {
        let mut r = Rng::new(0x1D1E_0001 ^ case);
        let (mut heap, _w) = populated_heap(&mut r);
        assert!(heap.verify_journal().is_ok(), "case seed {case}");
        let digest = heap.journal_digest();
        let arena = heap.arena_len();
        if arena == 0 {
            continue;
        }
        for _ in 0..FLIPS_PER_CASE {
            let byte = r.below_usize(arena);
            let bit = r.below(8) as u8;
            heap.corrupt_journal_arena_bit(byte, bit);
            assert!(
                heap.verify_journal().is_err(),
                "case seed {case}: flip of arena byte {byte} bit {bit} undetected"
            );
            heap.corrupt_journal_arena_bit(byte, bit);
            assert!(heap.verify_journal().is_ok(), "case seed {case}");
            assert_eq!(heap.journal_digest(), digest, "case seed {case}");
        }
    }
}

/// Flipping any single record-header bit (the `aux` scalar) is detected,
/// and flipping it back restores a verifiable journal.
#[test]
fn record_bit_flips_detected_and_reversible() {
    for case in 0..CASES {
        let mut r = Rng::new(0x1D1E_0002 ^ case);
        let (mut heap, _w) = populated_heap(&mut r);
        assert!(heap.verify_journal().is_ok(), "case seed {case}");
        let records = heap.log_len();
        for _ in 0..FLIPS_PER_CASE {
            let index = r.below_usize(records);
            let bit = r.below(64) as u32;
            heap.corrupt_journal_record_bit(index, bit);
            assert!(
                heap.verify_journal().is_err(),
                "case seed {case}: flip of record {index} bit {bit} undetected"
            );
            heap.corrupt_journal_record_bit(index, bit);
            assert!(heap.verify_journal().is_ok(), "case seed {case}");
        }
    }
}

/// Tearing any number of records off the journal tail without the digest
/// bookkeeping is detected as a digest mismatch.
#[test]
fn torn_tail_detected() {
    for case in 0..CASES {
        let mut r = Rng::new(0x1D1E_0003 ^ case);
        let (mut heap, _w) = populated_heap(&mut r);
        let records = heap.log_len();
        let n = 1 + r.below_usize(records);
        heap.tear_journal_tail(n);
        match heap.verify_journal() {
            Err(IntegrityError::DigestMismatch { .. }) => {}
            other => panic!("case seed {case}: torn tail of {n} records yielded {other:?}"),
        }
    }
}

/// A corrupted heap-image manifest digest is rejected before restore; the
/// pristine manifest verifies.
#[test]
fn image_digest_corruption_detected() {
    for case in 0..CASES {
        let mut r = Rng::new(0x1D1E_0004 ^ case);
        let mut heap = Heap::new("integ");
        let w = build_world(&mut heap);
        let n = r.below_usize(40);
        for _ in 0..n {
            apply_random(&mut heap, &w, &mut r);
        }
        let mut store = osiris_checkpoint::ChunkStore::new();
        let mut image = heap.clone_image(&mut store, None);
        assert!(image.verify().is_ok(), "case seed {case}");
        assert!(image.verify_full(&store).is_ok(), "case seed {case}");
        image.corrupt_digest_for_test();
        match image.verify() {
            Err(IntegrityError::ImageDigest { .. }) => {}
            other => panic!("case seed {case}: corrupt image digest yielded {other:?}"),
        }
    }
}
