//! Differential property test: the coalescing typed journal is
//! rollback-equivalent to the reference (boxed, uncoalesced) undo log.
//!
//! Two heaps are driven through an *identical* randomized schedule of
//! container mutations, nested marks, partial rollbacks, `discard_log`s and
//! logging-gate toggles. One heap uses the typed journal with write
//! coalescing; the other uses [`UndoMode::BoxedReference`], the historical
//! one-boxed-closure-per-store implementation, which never coalesces and
//! therefore serves as ground truth. After every rollback — and at the end —
//! the two heaps must be byte-identical.

use std::collections::BTreeMap;

use osiris_checkpoint::{Heap, UndoMode};
use osiris_rng::Rng;

const CASES: u64 = 96;
const STEPS: usize = 300;

struct World {
    cell: osiris_checkpoint::PCell<u64>,
    text: osiris_checkpoint::PCell<String>,
    vec: osiris_checkpoint::PVec<u32>,
    map: osiris_checkpoint::PMap<u8, String>,
    buf: osiris_checkpoint::PBuf,
}

fn build_world(heap: &mut Heap) -> World {
    World {
        cell: heap.alloc_cell("cell", 0),
        text: heap.alloc_cell("text", String::new()),
        vec: heap.alloc_vec("vec"),
        map: heap.alloc_map("map"),
        buf: heap.alloc_buf("buf"),
    }
}

#[derive(Debug, PartialEq)]
struct Snapshot {
    cell: u64,
    text: String,
    vec: Vec<u32>,
    map: BTreeMap<u8, String>,
    buf: Vec<u8>,
}

fn snapshot(heap: &Heap, w: &World) -> Snapshot {
    Snapshot {
        cell: w.cell.get(heap),
        text: w.text.get(heap),
        vec: w.vec.snapshot(heap),
        map: w.map.snapshot(heap),
        buf: w.buf.snapshot(heap),
    }
}

/// Applies one random mutation identically to both heaps. Mutations are
/// deliberately skewed toward *repeated stores to the same few locations* so
/// coalescing actually triggers.
fn mutate(r: &mut Rng, a: &mut Heap, wa: &World, b: &mut Heap, wb: &World) {
    match r.below(12) {
        0 | 1 => {
            // Hot cell: the classic coalescing target.
            let v = r.next_u64();
            wa.cell.set(a, v);
            wb.cell.set(b, v);
        }
        2 => {
            let s = format!("s{}", r.below(1000));
            wa.text.set(a, s.clone());
            wb.text.set(b, s);
        }
        3 => {
            let v = r.next_u32();
            wa.vec.push(a, v);
            wb.vec.push(b, v);
        }
        4 => {
            wa.vec.pop(a);
            wb.vec.pop(b);
        }
        5 | 6 => {
            // Hot vec slot: index drawn from a tiny range.
            let len = wa.vec.len(a);
            if len > 0 {
                let i = r.below_usize(len.min(4));
                let v = r.next_u32();
                wa.vec.set(a, i, v);
                wb.vec.set(b, i, v);
            }
        }
        7 => {
            let n = r.below_usize(8);
            wa.vec.truncate(a, n);
            wb.vec.truncate(b, n);
        }
        8 => {
            let k = (r.below(6)) as u8;
            let v = format!("v{}", r.below(100));
            wa.map.insert(a, k, v.clone());
            wb.map.insert(b, k, v);
        }
        9 => {
            let k = (r.below(6)) as u8;
            wa.map.remove(a, &k);
            wb.map.remove(b, &k);
        }
        10 => {
            // Hot buf range: same few offsets, varying lengths.
            let off = r.below_usize(3) * 16;
            let len = 1 + r.below_usize(24);
            let data = r.bytes(len);
            wa.buf.write_at(a, off, &data);
            wb.buf.write_at(b, off, &data);
        }
        _ => {
            let n = r.below_usize(48);
            wa.buf.truncate(a, n);
            wb.buf.truncate(b, n);
        }
    }
}

/// Gap-safe mutation: never touches the vec (see the gate-toggle branch).
fn mutate_gap(r: &mut Rng, a: &mut Heap, wa: &World, b: &mut Heap, wb: &World) {
    match r.below(4) {
        0 => {
            let v = r.next_u64();
            wa.cell.set(a, v);
            wb.cell.set(b, v);
        }
        1 => {
            let k = (r.below(6)) as u8;
            let v = format!("g{}", r.below(100));
            wa.map.insert(a, k, v.clone());
            wb.map.insert(b, k, v);
        }
        2 => {
            let off = r.below_usize(3) * 16;
            let len = 1 + r.below_usize(24);
            let data = r.bytes(len);
            wa.buf.write_at(a, off, &data);
            wb.buf.write_at(b, off, &data);
        }
        _ => {
            let n = r.below_usize(48);
            wa.buf.truncate(a, n);
            wb.buf.truncate(b, n);
        }
    }
}

/// The full differential schedule for one seed.
fn run_case(case: u64) {
    let mut r = Rng::new(0xD1FF ^ case.wrapping_mul(0x9E37_79B9));

    let mut a = Heap::new("typed");
    assert_eq!(a.undo_mode(), UndoMode::Typed);
    assert!(a.coalescing());
    let wa = build_world(&mut a);

    let mut b = Heap::new("boxed");
    b.set_undo_mode(UndoMode::BoxedReference);
    let wb = build_world(&mut b);

    a.set_logging(true);
    b.set_logging(true);

    // Stack of simultaneous marks (nested checkpoints).
    let mut marks: Vec<(osiris_checkpoint::Mark, osiris_checkpoint::Mark)> =
        vec![(a.mark(), b.mark())];

    for _ in 0..STEPS {
        match r.below(100) {
            // Mostly mutations.
            0..=79 => mutate(&mut r, &mut a, &wa, &mut b, &wb),
            // Push a nested mark.
            80..=86 => marks.push((a.mark(), b.mark())),
            // Roll back to a random live mark (pops everything above it).
            87..=92 => {
                if a.logging() {
                    let i = r.below_usize(marks.len());
                    let (ma, mb) = marks[i];
                    marks.truncate(i + 1);
                    a.rollback_to(ma);
                    b.rollback_to(mb);
                    assert_eq!(
                        snapshot(&a, &wa),
                        snapshot(&b, &wb),
                        "post-rollback divergence, case {case}"
                    );
                    // Note: log_len may legitimately differ (the typed log
                    // grows slower by exactly the coalesced records).
                    assert!(a.log_len() <= b.log_len(), "case {case}");
                }
            }
            // Close the window: discard both logs, drop all marks.
            93..=95 => {
                a.discard_log();
                b.discard_log();
                marks.clear();
                marks.push((a.mark(), b.mark()));
            }
            // Toggle the logging gate (an out-of-window span, then back in).
            _ => {
                a.set_logging(false);
                b.set_logging(false);
                // A few unlogged mutations happen while the gate is closed.
                // They are restricted to containers whose undo replay is
                // total (cell/map/buf): unlogged *vec length* changes under a
                // live log make later rollback panic with an out-of-bounds
                // index — identically in both implementations, a pre-existing
                // property of the undo-log design (real windows discard the
                // log before ever gating off).
                for _ in 0..r.below(4) {
                    mutate_gap(&mut r, &mut a, &wa, &mut b, &wb);
                }
                a.set_logging(true);
                b.set_logging(true);
                // Marks from before the gap stay valid (log untouched), but
                // rollback only undoes what was logged — identically on both
                // sides, which is exactly what this test checks.
            }
        }
    }

    // Final full rollback to the outermost mark must converge both heaps.
    let (ma, mb) = marks[0];
    a.rollback_to(ma);
    b.rollback_to(mb);
    assert_eq!(
        snapshot(&a, &wa),
        snapshot(&b, &wb),
        "final divergence, case {case}"
    );

    // The whole point: same semantics, strictly fewer-or-equal records.
    let sa = a.stats();
    let sb = b.stats();
    assert_eq!(
        sa.writes, sb.writes,
        "schedules must be identical, case {case}"
    );
    assert_eq!(
        sa.undo_appends + sa.coalesced_writes,
        sb.undo_appends,
        "every reference append is either appended or coalesced, case {case}"
    );
    assert!(
        sb.coalesced_writes == 0,
        "reference log must never coalesce"
    );
}

#[test]
fn coalescing_journal_matches_reference_log() {
    for case in 0..CASES {
        run_case(case);
    }
}

/// Coalescing must trigger on this workload (otherwise the differential test
/// proves nothing), and undo bytes must be strictly smaller than the
/// reference on a same-location-heavy write pattern.
#[test]
fn coalescing_actually_reduces_undo_volume() {
    let mut a = Heap::new("typed");
    let ca = a.alloc_cell("hot", 0u64);
    let mut b = Heap::new("boxed");
    b.set_undo_mode(UndoMode::BoxedReference);
    let cb = b.alloc_cell("hot", 0u64);

    a.set_logging(true);
    b.set_logging(true);
    let ma = a.mark();
    let mb = b.mark();
    for i in 0..10_000u64 {
        ca.set(&mut a, i);
        cb.set(&mut b, i);
    }
    assert_eq!(a.log_len(), 1, "O(distinct locations) records");
    assert_eq!(b.log_len(), 10_000, "O(writes) records");
    assert!(a.log_bytes() < b.log_bytes() / 1000);
    assert_eq!(a.stats().coalesced_writes, 9_999);
    a.rollback_to(ma);
    b.rollback_to(mb);
    assert_eq!(ca.get(&a), cb.get(&b));
    assert_eq!(ca.get(&a), 0);
}
