//! Randomized properties of the content-addressed chunk store and the COW
//! heap images layered on it: dedup is content-faithful, refcounts never
//! leak or double-free across clone/restore/release interleavings, a single
//! bit flip in any chunk is caught before restore, and COW restore is
//! state-equivalent to the historical deep-copy restore. Driven by the
//! in-tree deterministic PRNG so every failure reproduces from the printed
//! case seed.

use osiris_checkpoint::{ChunkStore, Heap, HeapImage, IntegrityError, CHUNK_SIZE};
use osiris_rng::Rng;

/// One random mutation against a small state universe (compact version of
/// the op set in `proptests.rs`, replayable for the differential test).
#[derive(Clone, Debug)]
enum Op {
    CellSet(u64),
    VecPush(u16),
    VecTruncate(u8),
    MapInsert(u8, u64),
    MapRemove(u8),
    BufWrite(u16, Vec<u8>),
    BufTruncate(u16),
}

fn gen_op(r: &mut Rng) -> Op {
    match r.below(7) {
        0 => Op::CellSet(r.next_u64()),
        1 => Op::VecPush(r.next_u64() as u16),
        2 => Op::VecTruncate(r.byte()),
        3 => Op::MapInsert(r.byte(), r.next_u64()),
        4 => Op::MapRemove(r.byte()),
        5 => {
            let len = 1 + r.below_usize(200);
            Op::BufWrite(r.next_u64() as u16, r.bytes(len))
        }
        _ => Op::BufTruncate(r.next_u64() as u16),
    }
}

struct World {
    cell: osiris_checkpoint::PCell<u64>,
    vec: osiris_checkpoint::PVec<u16>,
    map: osiris_checkpoint::PMap<u8, u64>,
    buf: osiris_checkpoint::PBuf,
}

fn build_world(heap: &mut Heap) -> World {
    World {
        cell: heap.alloc_cell("cell", 0),
        vec: heap.alloc_vec("vec"),
        map: heap.alloc_map("map"),
        buf: heap.alloc_buf("buf"),
    }
}

fn apply(heap: &mut Heap, w: &World, op: &Op) {
    match op {
        Op::CellSet(v) => w.cell.set(heap, *v),
        Op::VecPush(v) => w.vec.push(heap, *v),
        Op::VecTruncate(n) => w.vec.truncate(heap, *n as usize),
        Op::MapInsert(k, v) => {
            w.map.insert(heap, *k, *v);
        }
        Op::MapRemove(k) => {
            w.map.remove(heap, k);
        }
        Op::BufWrite(o, b) => w.buf.write_at(heap, *o as usize, b),
        Op::BufTruncate(n) => w.buf.truncate(heap, *n as usize),
    }
}

/// Identical content inserted from different heaps is stored once, and both
/// manifests still restore their exact state afterwards.
#[test]
fn dedup_is_content_faithful() {
    for case in 0..32u64 {
        let mut r = Rng::new(0xCA5_0001 ^ case);
        let mut store = ChunkStore::new();
        let mut h1 = Heap::new("a");
        let b1 = h1.alloc_buf("buf");
        let mut h2 = Heap::new("b");
        let b2 = h2.alloc_buf("buf");
        let shared = r.bytes(CHUNK_SIZE * 3);
        b1.write_at(&mut h1, 0, &shared);
        b2.write_at(&mut h2, 0, &shared);
        // h2 diverges past the shared pages.
        let tail_len = 1 + r.below_usize(300);
        b2.write_at(&mut h2, CHUNK_SIZE * 3, &r.bytes(tail_len));
        let i1 = h1.clone_image(&mut store, None);
        let i2 = h2.clone_image(&mut store, None);
        assert!(store.dedup_hits() >= 3, "case seed {case}: shared pages");
        assert!(
            store.resident_bytes() < i1.bytes() + i2.bytes(),
            "case seed {case}: dedup must beat per-copy accounting"
        );
        let d1 = h1.state_digest();
        let d2 = h2.state_digest();
        b1.write_at(&mut h1, r.below_usize(CHUNK_SIZE), &r.bytes(32));
        b2.truncate(&mut h2, r.below_usize(CHUNK_SIZE));
        h1.restore_image(&i1, &store).expect("restore h1");
        h2.restore_image(&i2, &store).expect("restore h2");
        assert_eq!(h1.state_digest(), d1, "case seed {case}");
        assert_eq!(h2.state_digest(), d2, "case seed {case}");
        i1.release(&mut store);
        i2.release(&mut store);
        assert!(store.is_empty(), "case seed {case}");
    }
}

/// Arbitrary interleavings of snapshot (full and incremental), restore,
/// release and mutation keep the store's refcounts exactly equal to the sum
/// of live manifests' references; releasing everything empties the store.
#[test]
fn refcounts_never_leak_or_double_free() {
    for case in 0..48u64 {
        let mut r = Rng::new(0xCA5_0002 ^ case);
        let mut heap = Heap::new("cas");
        let w = build_world(&mut heap);
        let mut store = ChunkStore::new();
        let mut pool: Vec<HeapImage> = Vec::new();
        let steps = 10 + r.below_usize(50);
        for _ in 0..steps {
            match r.below(6) {
                0 | 1 => {
                    let prev = if pool.is_empty() || r.below(2) == 0 {
                        None
                    } else {
                        pool.last()
                    };
                    let img = heap.clone_image(&mut store, prev);
                    pool.push(img);
                }
                2 => {
                    if !pool.is_empty() {
                        let i = r.below_usize(pool.len());
                        pool.swap_remove(i).release(&mut store);
                    }
                }
                3 => {
                    if !pool.is_empty() {
                        let i = r.below_usize(pool.len());
                        heap.restore_image(&pool[i], &store).expect("restore");
                    }
                }
                _ => {
                    for _ in 0..1 + r.below_usize(4) {
                        let op = gen_op(&mut r);
                        apply(&mut heap, &w, &op);
                    }
                }
            }
            let expected: u64 = pool.iter().map(HeapImage::chunk_ref_count).sum();
            assert_eq!(store.total_refs(), expected, "case seed {case}: ref drift");
            store.verify_all().expect("no corruption without injection");
        }
        for img in pool.drain(..) {
            img.release(&mut store);
        }
        assert!(store.is_empty(), "case seed {case}: chunks leaked");
        assert_eq!(store.resident_bytes(), 0, "case seed {case}");
    }
}

/// A single bit flip in any byte chunk a restore would read is caught by the
/// chunk-digest verification pass, and the heap is left untouched.
#[test]
fn single_bit_flip_caught_before_restore() {
    for case in 0..64u64 {
        let mut r = Rng::new(0xCA5_0003 ^ case);
        let mut heap = Heap::new("flip");
        let buf = heap.alloc_buf("buf");
        let cell = heap.alloc_cell("cell", 0u64);
        let len = CHUNK_SIZE + r.below_usize(CHUNK_SIZE * 3);
        buf.write_at(&mut heap, 0, &r.bytes(len));
        let mut store = ChunkStore::new();
        let img = heap.clone_image(&mut store, None);
        // Dirty every object so the restore must read every chunk.
        buf.write_at(&mut heap, r.below_usize(len), &[r.byte()]);
        cell.set(&mut heap, 1);
        let pages = len.div_ceil(CHUNK_SIZE);
        store
            .corrupt_byte_chunk_for_test(r.below_usize(pages), r.below_usize(CHUNK_SIZE), r.byte())
            .expect("a byte chunk to corrupt");
        let before = heap.state_digest();
        match heap.restore_image(&img, &store) {
            Err(IntegrityError::ChunkDigest { .. }) => {}
            other => panic!("case seed {case}: bit flip yielded {other:?}"),
        }
        assert_eq!(
            heap.state_digest(),
            before,
            "case seed {case}: failed restore must not mutate the heap"
        );
        assert!(img.verify_full(&store).is_err(), "case seed {case}");
    }
}

/// Differential: restoring the COW manifest leaves the heap in exactly the
/// state the deep-copy reference restore produces, for arbitrary snapshot
/// points and arbitrary post-snapshot mutations.
#[test]
fn cow_restore_equals_deep_restore() {
    for case in 0..64u64 {
        let mut r = Rng::new(0xCA5_0004 ^ case);
        let mut heap = Heap::new("diff");
        let w = build_world(&mut heap);
        for _ in 0..r.below_usize(40) {
            let op = gen_op(&mut r);
            apply(&mut heap, &w, &op);
        }
        let mut store = ChunkStore::new();
        let cow = heap.clone_image(&mut store, None);
        let deep = heap.clone_image_deep();
        assert_eq!(cow.bytes(), deep.bytes(), "case seed {case}: accounting");
        let base = heap.state_digest();
        let suffix: Vec<Op> = (0..1 + r.below_usize(40)).map(|_| gen_op(&mut r)).collect();
        for op in &suffix {
            apply(&mut heap, &w, op);
        }
        heap.restore_image_deep(&deep);
        assert_eq!(heap.state_digest(), base, "case seed {case}: deep restore");
        for op in &suffix {
            apply(&mut heap, &w, op);
        }
        heap.restore_image(&cow, &store).expect("cow restore");
        assert_eq!(heap.state_digest(), base, "case seed {case}: cow restore");
        cow.release(&mut store);
        assert!(store.is_empty(), "case seed {case}");
    }
}

/// Regression: a rollback write-back dirties the epoch of every object it
/// touches. Otherwise a snapshot taken between the write and the rollback
/// would see the object as clean and skip restoring the snapshotted value.
#[test]
fn rollback_dirties_epochs_for_snapshots() {
    let mut heap = Heap::new("rb");
    let c = heap.alloc_cell("c", 0u64);
    let mut store = ChunkStore::new();
    heap.set_logging(true);
    let mark = heap.mark();
    c.set(&mut heap, 7);
    let snap = heap.clone_image(&mut store, None); // records value 7
    heap.rollback_to(mark); // value back to 0, epoch must advance
    assert_eq!(c.get(&heap), 0);
    heap.restore_image(&snap, &store).expect("restore");
    assert_eq!(
        c.get(&heap),
        7,
        "restore must not skip the rolled-back object as clean"
    );
    snap.release(&mut store);
    assert!(store.is_empty());
}
