//! `PMap<K, V>`: a checkpointed ordered map.

use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;

use crate::heap::{Heap, HeapValue, Holder, ObjId};

/// A handle to a `BTreeMap<K, V>` stored in a [`Heap`], with undo-logged
/// mutation. Servers keep their tables (process table, file table, key-value
/// store…) in `PMap`s so a crashed request can be rolled back precisely.
///
/// Map mutations are never coalesced: the coalescing index is type-erased and
/// cannot compare keys, and hashing alone cannot prove two keys equal.
///
/// ```
/// # use osiris_checkpoint::Heap;
/// let mut heap = Heap::new("demo");
/// let m = heap.alloc_map::<u32, String>("procs");
/// m.insert(&mut heap, 1, "init".into());
/// assert_eq!(m.get(&heap, &1).as_deref(), Some("init"));
/// ```
pub struct PMap<K, V> {
    id: ObjId,
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K, V> Copy for PMap<K, V> {}

impl<K, V> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PMap({:?})", self.id)
    }
}

/// Key bound for [`PMap`]: ordinary ordered heap values.
pub trait MapKey: HeapValue + Ord {}
impl<K: HeapValue + Ord> MapKey for K {}

fn entry_bytes<K, V>() -> usize {
    std::mem::size_of::<K>() + std::mem::size_of::<V>()
}

fn refresh_bytes<K: MapKey, V: HeapValue>(holder: &mut Holder<BTreeMap<K, V>>) {
    holder.extra_bytes = holder.value.len() * entry_bytes::<K, V>();
}

impl Heap {
    /// Allocates a new empty [`PMap`] named `name`.
    pub fn alloc_map<K: MapKey, V: HeapValue>(&mut self, name: &'static str) -> PMap<K, V> {
        PMap {
            id: self.alloc_obj(name, BTreeMap::<K, V>::new()),
            _marker: PhantomData,
        }
    }
}

impl<K: MapKey, V: HeapValue> PMap<K, V> {
    /// Number of entries.
    pub fn len(&self, heap: &Heap) -> usize {
        heap.holder::<BTreeMap<K, V>>(self.id).value.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self, heap: &Heap) -> bool {
        self.len(heap) == 0
    }

    /// Returns a clone of the value stored under `key`.
    pub fn get(&self, heap: &Heap, key: &K) -> Option<V> {
        heap.holder::<BTreeMap<K, V>>(self.id)
            .value
            .get(key)
            .cloned()
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, heap: &Heap, key: &K) -> bool {
        heap.holder::<BTreeMap<K, V>>(self.id)
            .value
            .contains_key(key)
    }

    /// Applies `f` to a shared reference of the value under `key`.
    pub fn with<R>(&self, heap: &Heap, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        heap.holder::<BTreeMap<K, V>>(self.id).value.get(key).map(f)
    }

    /// Applies `f` to a shared reference of the underlying map.
    pub fn with_map<R>(&self, heap: &Heap, f: impl FnOnce(&BTreeMap<K, V>) -> R) -> R {
        f(&heap.holder::<BTreeMap<K, V>>(self.id).value)
    }

    /// Inserts `value` under `key`, returning the previous value. The
    /// previous binding (or absence) is logged for rollback.
    pub fn insert(&self, heap: &mut Heap, key: K, value: V) -> Option<V> {
        let old = heap
            .holder::<BTreeMap<K, V>>(self.id)
            .value
            .get(&key)
            .cloned();
        heap.log_map_insert::<K, V>(self.id, &key, old.as_ref());
        let h = heap.holder_mut::<BTreeMap<K, V>>(self.id);
        let prev = h.value.insert(key, value);
        refresh_bytes(h);
        prev.or(old)
    }

    /// Removes the binding for `key`, returning its value. Logged for
    /// rollback. Removing an absent key logs nothing.
    pub fn remove(&self, heap: &mut Heap, key: &K) -> Option<V> {
        let old = heap
            .holder::<BTreeMap<K, V>>(self.id)
            .value
            .get(key)
            .cloned()?;
        heap.log_map_remove::<K, V>(self.id, key, &old);
        let h = heap.holder_mut::<BTreeMap<K, V>>(self.id);
        let out = h.value.remove(key);
        refresh_bytes(h);
        out.or(Some(old))
    }

    /// Mutates the value under `key` in place, logging the old value.
    /// Returns `None` (without calling `f`) if the key is absent.
    pub fn update<R>(&self, heap: &mut Heap, key: &K, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        let old = heap
            .holder::<BTreeMap<K, V>>(self.id)
            .value
            .get(key)
            .cloned()?;
        heap.log_map_insert::<K, V>(self.id, key, Some(&old));
        let h = heap.holder_mut::<BTreeMap<K, V>>(self.id);
        h.value.get_mut(key).map(f)
    }

    /// Calls `f` for every `(key, value)` pair in key order.
    pub fn for_each(&self, heap: &Heap, mut f: impl FnMut(&K, &V)) {
        for (k, v) in heap.holder::<BTreeMap<K, V>>(self.id).value.iter() {
            f(k, v);
        }
    }

    /// Returns a clone of all keys, in order.
    pub fn keys(&self, heap: &Heap) -> Vec<K> {
        heap.holder::<BTreeMap<K, V>>(self.id)
            .value
            .keys()
            .cloned()
            .collect()
    }

    /// Returns the first key matching `pred`, if any.
    pub fn find_key(&self, heap: &Heap, mut pred: impl FnMut(&K, &V) -> bool) -> Option<K> {
        heap.holder::<BTreeMap<K, V>>(self.id)
            .value
            .iter()
            .find(|(k, v)| pred(k, v))
            .map(|(k, _)| k.clone())
    }

    /// Returns a full snapshot clone of the map.
    pub fn snapshot(&self, heap: &Heap) -> BTreeMap<K, V> {
        heap.holder::<BTreeMap<K, V>>(self.id).value.clone()
    }
}

#[cfg(test)]
mod tests {
    use crate::Heap;

    #[test]
    fn insert_get_remove() {
        let mut h = Heap::new("t");
        let m = h.alloc_map::<u32, &'static str>("m");
        assert_eq!(m.insert(&mut h, 1, "a"), None);
        assert_eq!(m.insert(&mut h, 1, "b"), Some("a"));
        assert_eq!(m.get(&h, &1), Some("b"));
        assert_eq!(m.remove(&mut h, &1), Some("b"));
        assert!(m.is_empty(&h));
    }

    #[test]
    fn rollback_restores_bindings() {
        let mut h = Heap::new("t");
        let m = h.alloc_map::<u32, String>("m");
        m.insert(&mut h, 1, "one".into());
        m.insert(&mut h, 2, "two".into());
        h.set_logging(true);
        let mark = h.mark();
        m.insert(&mut h, 3, "three".into());
        m.remove(&mut h, &1);
        m.update(&mut h, &2, |v| *v = "TWO".into());
        h.rollback_to(mark);
        assert_eq!(m.get(&h, &1).as_deref(), Some("one"));
        assert_eq!(m.get(&h, &2).as_deref(), Some("two"));
        assert_eq!(m.get(&h, &3), None);
        assert_eq!(m.len(&h), 2);
    }

    #[test]
    fn update_absent_key_is_noop() {
        let mut h = Heap::new("t");
        let m = h.alloc_map::<u32, u32>("m");
        h.set_logging(true);
        assert_eq!(m.update(&mut h, &7, |v| *v += 1), None);
        assert_eq!(h.log_len(), 0);
    }

    #[test]
    fn remove_absent_key_logs_nothing() {
        let mut h = Heap::new("t");
        let m = h.alloc_map::<u32, u32>("m");
        h.set_logging(true);
        assert_eq!(m.remove(&mut h, &7), None);
        assert_eq!(h.log_len(), 0);
    }

    #[test]
    fn keys_and_find_key_are_ordered() {
        let mut h = Heap::new("t");
        let m = h.alloc_map::<u32, u32>("m");
        for k in [3, 1, 2] {
            m.insert(&mut h, k, k * 10);
        }
        assert_eq!(m.keys(&h), vec![1, 2, 3]);
        assert_eq!(m.find_key(&h, |_, v| *v > 15), Some(2));
    }

    #[test]
    fn map_writes_are_never_coalesced() {
        let mut h = Heap::new("t");
        let m = h.alloc_map::<u32, u64>("m");
        m.insert(&mut h, 1, 0);
        h.set_logging(true);
        let mark = h.mark();
        for i in 1..=5 {
            m.insert(&mut h, 1, i);
        }
        assert_eq!(h.log_len(), 5);
        assert_eq!(h.stats().coalesced_writes, 0);
        h.rollback_to(mark);
        assert_eq!(m.get(&h, &1), Some(0));
    }

    #[test]
    fn owned_keys_and_values_roll_back_exactly() {
        let mut h = Heap::new("t");
        let m = h.alloc_map::<String, Vec<u8>>("m");
        m.insert(&mut h, "a".into(), vec![1]);
        h.set_logging(true);
        let mark = h.mark();
        m.insert(&mut h, "a".into(), vec![9, 9]);
        m.insert(&mut h, "b".into(), vec![2]);
        m.remove(&mut h, &"a".to_string());
        h.rollback_to(mark);
        assert_eq!(m.get(&h, &"a".to_string()), Some(vec![1]));
        assert_eq!(m.get(&h, &"b".to_string()), None);
    }
}
