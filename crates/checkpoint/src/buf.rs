//! `PBuf`: a checkpointed byte buffer (file contents, block cache pages…).

use std::fmt;

use crate::heap::{Heap, Holder, ObjId};

/// A handle to a growable byte buffer stored in a [`Heap`], with range-level
/// undo logging. This is the closest analog to the paper's raw
/// *(address, old bytes)* undo entries: a write of `n` bytes logs exactly the
/// `n` overwritten bytes.
///
/// Repeated writes to the same offset within one window coalesce: a later
/// write covered by an earlier one (same offset, same or shorter length)
/// appends nothing, because rolling back the earlier record already restores
/// the whole range. Only *length-neutral* writes coalesce — a write that
/// grows the buffer (possible after an intervening truncate shortened it)
/// always appends, because its zero-fill growth is not captured by the
/// covering record.
///
/// ```
/// # use osiris_checkpoint::Heap;
/// let mut heap = Heap::new("demo");
/// let buf = heap.alloc_buf("page");
/// buf.write_at(&mut heap, 0, b"hello");
/// assert_eq!(buf.read(&heap, 0, 5), b"hello");
/// ```
#[derive(Clone, Copy)]
pub struct PBuf {
    id: ObjId,
}

impl fmt::Debug for PBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PBuf({:?})", self.id)
    }
}

fn refresh_bytes(holder: &mut Holder<Vec<u8>>) {
    holder.extra_bytes = holder.value.len();
}

impl Heap {
    /// Allocates a new empty [`PBuf`] named `name`.
    pub fn alloc_buf(&mut self, name: &'static str) -> PBuf {
        PBuf {
            id: self.alloc_obj(name, Vec::<u8>::new()),
        }
    }
}

impl PBuf {
    /// Current length in bytes.
    pub fn len(&self, heap: &Heap) -> usize {
        heap.holder::<Vec<u8>>(self.id).value.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self, heap: &Heap) -> bool {
        self.len(heap) == 0
    }

    /// Reads up to `len` bytes starting at `offset`. Short reads past the end
    /// return the available prefix; reads entirely past the end return an
    /// empty vector.
    pub fn read(&self, heap: &Heap, offset: usize, len: usize) -> Vec<u8> {
        let data = &heap.holder::<Vec<u8>>(self.id).value;
        if offset >= data.len() {
            return Vec::new();
        }
        let end = (offset + len).min(data.len());
        data[offset..end].to_vec()
    }

    /// Writes `bytes` starting at `offset`, growing the buffer (zero-filled)
    /// if needed. The overwritten range (including any growth) is logged so
    /// rollback restores both contents and length.
    pub fn write_at(&self, heap: &mut Heap, offset: usize, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        heap.log_buf_write(self.id, offset, bytes.len());
        let h = heap.holder_mut::<Vec<u8>>(self.id);
        let end = offset + bytes.len();
        if end > h.value.len() {
            h.value.resize(end, 0);
        }
        h.value[offset..end].copy_from_slice(bytes);
        refresh_bytes(h);
    }

    /// Truncates the buffer to `len` bytes, logging the removed tail.
    pub fn truncate(&self, heap: &mut Heap, len: usize) {
        let cur = heap.holder::<Vec<u8>>(self.id).value.len();
        if len >= cur {
            return;
        }
        heap.log_buf_truncate(self.id, len);
        let h = heap.holder_mut::<Vec<u8>>(self.id);
        h.value.truncate(len);
        refresh_bytes(h);
    }

    /// Returns a snapshot clone of the whole buffer.
    pub fn snapshot(&self, heap: &Heap) -> Vec<u8> {
        heap.holder::<Vec<u8>>(self.id).value.clone()
    }
}

#[cfg(test)]
mod tests {
    use crate::Heap;

    #[test]
    fn write_read_grow() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, b"hello");
        b.write_at(&mut h, 8, b"world");
        assert_eq!(b.len(&h), 13);
        assert_eq!(b.read(&h, 0, 5), b"hello");
        assert_eq!(b.read(&h, 5, 3), vec![0, 0, 0]);
        assert_eq!(b.read(&h, 8, 100), b"world");
        assert_eq!(b.read(&h, 50, 4), Vec::<u8>::new());
    }

    #[test]
    fn rollback_restores_contents_and_length() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, b"abcdef");
        h.set_logging(true);
        let m = h.mark();
        b.write_at(&mut h, 2, b"XYZ");
        b.write_at(&mut h, 6, b"growing!");
        b.truncate(&mut h, 3);
        h.rollback_to(m);
        assert_eq!(b.snapshot(&h), b"abcdef");
    }

    #[test]
    fn covered_rewrites_coalesce_but_longer_ones_do_not() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, &[9u8; 32]);
        h.set_logging(true);
        let m = h.mark();
        b.write_at(&mut h, 0, &[1u8; 16]);
        // Same offset, same or shorter length: covered by the first record.
        b.write_at(&mut h, 0, &[2u8; 16]);
        b.write_at(&mut h, 0, &[3u8; 8]);
        assert_eq!(h.log_len(), 1);
        assert_eq!(h.stats().coalesced_writes, 2);
        // Longer write at the same offset is NOT covered and must append.
        b.write_at(&mut h, 0, &[4u8; 24]);
        assert_eq!(h.log_len(), 2);
        // Different offset is a different slot.
        b.write_at(&mut h, 16, &[5u8; 4]);
        assert_eq!(h.log_len(), 3);
        h.rollback_to(m);
        assert_eq!(b.snapshot(&h), vec![9u8; 32]);
    }

    #[test]
    fn coalesced_growth_writes_roll_back_length() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        h.set_logging(true);
        let m = h.mark();
        // First write grows the empty buffer; repeats are covered by it.
        b.write_at(&mut h, 0, &[1u8; 64]);
        b.write_at(&mut h, 0, &[2u8; 64]);
        b.write_at(&mut h, 0, &[3u8; 64]);
        assert_eq!(h.log_len(), 1);
        h.rollback_to(m);
        assert!(
            b.is_empty(&h),
            "rollback must restore the pre-window length"
        );
    }

    #[test]
    fn growing_rewrite_after_truncate_is_not_coalesced() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        let base: Vec<u8> = (0..48).collect();
        b.write_at(&mut h, 0, &base);
        h.set_logging(true);
        let m = h.mark();
        // Covering record for [32, 48).
        b.write_at(&mut h, 32, &[1u8; 16]);
        // Shrink below the covered range's end; the tail is logged.
        b.truncate(&mut h, 30);
        // Covered offset and length, but the buffer is now shorter: this
        // write grows it back to 48 and must append (a coalesced skip would
        // leave the zero-filled growth at [30, 32) unlogged and break the
        // truncate record's replay).
        b.write_at(&mut h, 32, &[2u8; 16]);
        assert_eq!(h.stats().coalesced_writes, 0);
        assert_eq!(h.log_len(), 3);
        h.rollback_to(m);
        assert_eq!(b.snapshot(&h), base);
    }

    #[test]
    fn empty_write_is_noop() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        h.set_logging(true);
        b.write_at(&mut h, 10, b"");
        assert_eq!(b.len(&h), 0);
        assert_eq!(h.log_len(), 0);
    }

    #[test]
    fn resident_bytes_follow_payload() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        let before = h.resident_bytes();
        b.write_at(&mut h, 0, &[7u8; 4096]);
        assert!(h.resident_bytes() >= before + 4096);
        b.truncate(&mut h, 0);
        assert!(h.resident_bytes() < before + 4096);
    }
}
