//! `PBuf`: a checkpointed byte buffer (file contents, block cache pages…).

use std::fmt;

use crate::heap::{Heap, Holder, Obj, ObjId};

/// A handle to a growable byte buffer stored in a [`Heap`], with range-level
/// undo logging. This is the closest analog to the paper's raw
/// *(address, old bytes)* undo entries: a write of `n` bytes logs exactly the
/// `n` overwritten bytes.
///
/// ```
/// # use osiris_checkpoint::Heap;
/// let mut heap = Heap::new("demo");
/// let buf = heap.alloc_buf("page");
/// buf.write_at(&mut heap, 0, b"hello");
/// assert_eq!(buf.read(&heap, 0, 5), b"hello");
/// ```
#[derive(Clone, Copy)]
pub struct PBuf {
    id: ObjId,
}

impl fmt::Debug for PBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PBuf({:?})", self.id)
    }
}

fn refresh_bytes(holder: &mut Holder<Vec<u8>>) {
    holder.extra_bytes = holder.value.len();
}

fn holder_mut(objs: &mut [Obj], index: u32) -> &mut Holder<Vec<u8>> {
    objs[index as usize]
        .data
        .as_any_mut()
        .downcast_mut::<Holder<Vec<u8>>>()
        .expect("undo type mismatch")
}

impl Heap {
    /// Allocates a new empty [`PBuf`] named `name`.
    pub fn alloc_buf(&mut self, name: &'static str) -> PBuf {
        PBuf { id: self.alloc_obj(name, Vec::<u8>::new()) }
    }
}

impl PBuf {
    /// Current length in bytes.
    pub fn len(&self, heap: &Heap) -> usize {
        heap.holder::<Vec<u8>>(self.id).value.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self, heap: &Heap) -> bool {
        self.len(heap) == 0
    }

    /// Reads up to `len` bytes starting at `offset`. Short reads past the end
    /// return the available prefix; reads entirely past the end return an
    /// empty vector.
    pub fn read(&self, heap: &Heap, offset: usize, len: usize) -> Vec<u8> {
        let data = &heap.holder::<Vec<u8>>(self.id).value;
        if offset >= data.len() {
            return Vec::new();
        }
        let end = (offset + len).min(data.len());
        data[offset..end].to_vec()
    }

    /// Writes `bytes` starting at `offset`, growing the buffer (zero-filled)
    /// if needed. The overwritten range (including any growth) is logged so
    /// rollback restores both contents and length.
    pub fn write_at(&self, heap: &mut Heap, offset: usize, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        let id = self.id;
        let old_len = heap.holder::<Vec<u8>>(id).value.len();
        let end = offset + bytes.len();
        let overwritten: Vec<u8> = {
            let data = &heap.holder::<Vec<u8>>(id).value;
            let ow_end = end.min(old_len);
            if offset < old_len { data[offset..ow_end].to_vec() } else { Vec::new() }
        };
        heap.record_write(bytes.len(), move |objs| {
            let h = holder_mut(objs, id.index);
            // Restore old contents then old length.
            let restore_end = offset + overwritten.len();
            if restore_end <= h.value.len() {
                h.value[offset..restore_end].copy_from_slice(&overwritten);
            }
            h.value.truncate(old_len);
            refresh_bytes(h);
        });
        let h = heap.holder_mut::<Vec<u8>>(id);
        if end > h.value.len() {
            h.value.resize(end, 0);
        }
        h.value[offset..end].copy_from_slice(bytes);
        refresh_bytes(h);
    }

    /// Truncates the buffer to `len` bytes, logging the removed tail.
    pub fn truncate(&self, heap: &mut Heap, len: usize) {
        let id = self.id;
        let cur = heap.holder::<Vec<u8>>(id).value.len();
        if len >= cur {
            return;
        }
        let tail: Vec<u8> = heap.holder::<Vec<u8>>(id).value[len..].to_vec();
        heap.record_write(tail.len(), move |objs| {
            let h = holder_mut(objs, id.index);
            h.value.extend_from_slice(&tail);
            refresh_bytes(h);
        });
        let h = heap.holder_mut::<Vec<u8>>(id);
        h.value.truncate(len);
        refresh_bytes(h);
    }

    /// Returns a snapshot clone of the whole buffer.
    pub fn snapshot(&self, heap: &Heap) -> Vec<u8> {
        heap.holder::<Vec<u8>>(self.id).value.clone()
    }
}

#[cfg(test)]
mod tests {
    use crate::Heap;

    #[test]
    fn write_read_grow() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, b"hello");
        b.write_at(&mut h, 8, b"world");
        assert_eq!(b.len(&h), 13);
        assert_eq!(b.read(&h, 0, 5), b"hello");
        assert_eq!(b.read(&h, 5, 3), vec![0, 0, 0]);
        assert_eq!(b.read(&h, 8, 100), b"world");
        assert_eq!(b.read(&h, 50, 4), Vec::<u8>::new());
    }

    #[test]
    fn rollback_restores_contents_and_length() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, b"abcdef");
        h.set_logging(true);
        let m = h.mark();
        b.write_at(&mut h, 2, b"XYZ");
        b.write_at(&mut h, 6, b"growing!");
        b.truncate(&mut h, 3);
        h.rollback_to(m);
        assert_eq!(b.snapshot(&h), b"abcdef");
    }

    #[test]
    fn empty_write_is_noop() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        h.set_logging(true);
        b.write_at(&mut h, 10, b"");
        assert_eq!(b.len(&h), 0);
        assert_eq!(h.log_len(), 0);
    }

    #[test]
    fn resident_bytes_follow_payload() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        let before = h.resident_bytes();
        b.write_at(&mut h, 0, &[7u8; 4096]);
        assert!(h.resident_bytes() >= before + 4096);
        b.truncate(&mut h, 0);
        assert!(h.resident_bytes() < before + 4096);
    }
}
