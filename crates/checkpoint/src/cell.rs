//! `PCell<T>`: a single checkpointed value.

use std::fmt;
use std::marker::PhantomData;

use crate::heap::{Heap, HeapValue, ObjId};

/// A handle to a single value of type `T` stored in a [`Heap`].
///
/// The handle itself is plain copyable data; all reads and writes go through
/// the heap so that mutations are undo-logged while a recovery window is
/// open.
///
/// ```
/// # use osiris_checkpoint::Heap;
/// let mut heap = Heap::new("demo");
/// let cell = heap.alloc_cell("answer", 41u32);
/// cell.update(&mut heap, |v| *v += 1);
/// assert_eq!(cell.get(&heap), 42);
/// ```
pub struct PCell<T> {
    id: ObjId,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for PCell<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PCell<T> {}

impl<T> fmt::Debug for PCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PCell({:?})", self.id)
    }
}

impl Heap {
    /// Allocates a new [`PCell`] named `name` (for debugging and memory
    /// attribution) holding `value`.
    pub fn alloc_cell<T: HeapValue>(&mut self, name: &'static str, value: T) -> PCell<T> {
        PCell {
            id: self.alloc_obj(name, value),
            _marker: PhantomData,
        }
    }
}

impl<T: HeapValue> PCell<T> {
    /// Returns a clone of the stored value.
    ///
    /// # Panics
    ///
    /// Panics if used with a heap other than the allocating one.
    pub fn get(&self, heap: &Heap) -> T {
        heap.holder::<T>(self.id).value.clone()
    }

    /// Applies `f` to a shared reference of the stored value.
    pub fn with<R>(&self, heap: &Heap, f: impl FnOnce(&T) -> R) -> R {
        f(&heap.holder::<T>(self.id).value)
    }

    /// Replaces the stored value, logging the old one for rollback.
    pub fn set(&self, heap: &mut Heap, value: T) {
        heap.log_cell_set::<T>(self.id);
        heap.holder_mut::<T>(self.id).value = value;
    }

    /// Mutates the stored value in place through `f`, logging the old value.
    pub fn update<R>(&self, heap: &mut Heap, f: impl FnOnce(&mut T) -> R) -> R {
        heap.log_cell_set::<T>(self.id);
        f(&mut heap.holder_mut::<T>(self.id).value)
    }
}

#[cfg(test)]
mod tests {
    use crate::Heap;

    #[test]
    fn get_set_update() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("v", String::from("a"));
        c.set(&mut h, "b".into());
        assert_eq!(c.get(&h), "b");
        c.update(&mut h, |s| s.push('c'));
        assert_eq!(c.get(&h), "bc");
        assert!(c.with(&h, |s| s.len() == 2));
    }

    #[test]
    fn update_is_rolled_back() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("v", vec![1, 2, 3]);
        h.set_logging(true);
        let m = h.mark();
        c.update(&mut h, |v| v.push(4));
        c.update(&mut h, |v| v.clear());
        assert_eq!(c.get(&h), Vec::<i32>::new());
        h.rollback_to(m);
        assert_eq!(c.get(&h), vec![1, 2, 3]);
    }

    #[test]
    fn update_returns_closure_result() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("v", 10u32);
        let doubled = c.update(&mut h, |v| {
            *v += 1;
            *v * 2
        });
        assert_eq!(doubled, 22);
    }
}
