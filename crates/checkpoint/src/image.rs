//! Heap images: deep snapshots used for the Recovery Server's clone pool.

use crate::heap::{Heap, Obj};
use crate::journal::{fnv1a_bytes, fnv1a_u64, IntegrityError, FNV_OFFSET};

/// Structural FNV-1a digest over an image's object graph: object order,
/// names, and per-object resident sizes. Object *contents* are type-erased
/// (`dyn` values), so the digest covers the shape the restore path relies
/// on; [`HeapImage::corrupt_digest_for_test`] models content damage.
fn image_digest(heap_id: u32, objs: &[Obj]) -> u64 {
    let mut d = fnv1a_u64(FNV_OFFSET, u64::from(heap_id));
    d = fnv1a_u64(d, objs.len() as u64);
    for (i, o) in objs.iter().enumerate() {
        d = fnv1a_u64(d, i as u64);
        d = fnv1a_bytes(d, o.name.as_bytes());
        d = fnv1a_u64(d, o.data.approx_bytes() as u64);
    }
    d
}

/// A deep copy of a heap's entire object graph.
///
/// The OSIRIS Recovery Server keeps a *spare fresh copy* of every recoverable
/// component so that core servers (PM, VM, even RS itself) can be replaced
/// without relying on `fork()` at recovery time. `HeapImage` is that spare
/// copy: it is taken right after a server finishes initialization
/// ([`Heap::clone_image`]) and can later be written back over the live heap
/// ([`Heap::restore_image`]) for *stateless* restarts, or merely held in
/// memory — its [`bytes`](HeapImage::bytes) are what Table VI accounts as the
/// "+clone" overhead.
pub struct HeapImage {
    objs: Vec<Obj>,
    heap_id: u32,
    bytes: usize,
    /// Structural digest captured at [`Heap::clone_image`] time; verified by
    /// [`HeapImage::verify`] before the recovery path restores the image.
    digest: u64,
}

impl std::fmt::Debug for HeapImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapImage")
            .field("objects", &self.objs.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Heap {
    /// Takes a deep snapshot of every object in this heap.
    pub fn clone_image(&self) -> HeapImage {
        let objs: Vec<Obj> = self
            .objs
            .iter()
            .map(|o| Obj {
                name: o.name,
                data: o.data.clone_obj(),
            })
            .collect();
        let bytes = objs.iter().map(|o| o.data.approx_bytes()).sum();
        let digest = image_digest(self.id(), &objs);
        HeapImage {
            objs,
            heap_id: self.id(),
            bytes,
            digest,
        }
    }

    /// Replaces this heap's contents with `image`, discarding the undo log.
    ///
    /// Existing handles remain valid because object ids are positional and
    /// the image preserves allocation order.
    ///
    /// # Panics
    ///
    /// Panics if the image was taken from a different heap.
    pub fn restore_image(&mut self, image: &HeapImage) {
        assert_eq!(
            image.heap_id,
            self.id(),
            "image belongs to a different heap"
        );
        self.objs = image
            .objs
            .iter()
            .map(|o| Obj {
                name: o.name,
                data: o.data.clone_obj(),
            })
            .collect();
        self.discard_log();
    }
}

impl HeapImage {
    /// Approximate resident size of the image in bytes (Table VI "+clone").
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of objects captured.
    pub fn object_count(&self) -> usize {
        self.objs.len()
    }

    /// The structural digest captured when the image was cloned.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Recomputes the structural digest and compares it against the one
    /// captured at clone time. The recovery path calls this before a fresh
    /// restart trusts the image; a damaged image degrades to a controlled
    /// shutdown instead of restoring garbage.
    pub fn verify(&self) -> Result<(), IntegrityError> {
        let actual = image_digest(self.heap_id, &self.objs);
        if actual != self.digest {
            return Err(IntegrityError::ImageDigest {
                expected: self.digest,
                actual,
            });
        }
        Ok(())
    }

    /// Corruption-injection test support: flips one bit of the stored
    /// digest, making [`HeapImage::verify`] fail deterministically.
    pub fn corrupt_digest_for_test(&mut self) {
        self.digest ^= 1;
    }
}

#[cfg(test)]
mod tests {
    use crate::Heap;

    #[test]
    fn image_restores_initial_state() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        let v = h.alloc_vec::<u8>("v");
        v.push(&mut h, 42);
        let img = h.clone_image();
        c.set(&mut h, 99);
        v.push(&mut h, 43);
        h.restore_image(&img);
        assert_eq!(c.get(&h), 1);
        assert_eq!(v.snapshot(&h), vec![42]);
    }

    #[test]
    fn image_is_a_deep_copy() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", vec![1, 2, 3]);
        let img = h.clone_image();
        c.update(&mut h, |v| v.push(4));
        // Mutating the live heap must not affect the image.
        h.restore_image(&img);
        assert_eq!(c.get(&h), vec![1, 2, 3]);
    }

    #[test]
    fn image_bytes_match_resident_estimate() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, &[1u8; 1000]);
        let img = h.clone_image();
        assert_eq!(img.bytes(), h.resident_bytes());
        assert_eq!(img.object_count(), 1);
    }

    #[test]
    #[should_panic(expected = "different heap")]
    fn foreign_image_is_rejected() {
        let a = Heap::new("a");
        let mut b = Heap::new("b");
        let img = a.clone_image();
        b.restore_image(&img);
    }

    #[test]
    fn restore_discards_undo_log() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 0u32);
        let img = h.clone_image();
        h.set_logging(true);
        c.set(&mut h, 5);
        assert!(h.log_len() > 0);
        h.restore_image(&img);
        assert_eq!(h.log_len(), 0);
    }
}
