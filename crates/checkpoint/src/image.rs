//! Heap images: chunk-manifest snapshots for the Recovery Server's clone
//! pool, resolved against a shared content-addressed [`ChunkStore`].
//!
//! The OSIRIS Recovery Server keeps a *spare fresh copy* of every recoverable
//! component so that core servers (PM, VM, even RS itself) can be replaced
//! without relying on `fork()` at recovery time. [`HeapImage`] is that spare
//! copy — but no longer a deep object copy. It is a manifest: per object, the
//! dirty epoch at snapshot time plus the digests of the chunks holding its
//! content. The chunks themselves live refcounted in the store, shared by
//! every image (and deduplicated across components), so the pool's resident
//! cost is the *deduped* chunk bytes, and both [`Heap::clone_image`] (with a
//! predecessor) and [`Heap::restore_image`] touch only objects whose epoch
//! diverges — O(dirty), not O(heap).
//!
//! The historical deep copy survives as [`DeepImage`] /
//! [`Heap::clone_image_deep`]: the reference implementation for the
//! differential state-equivalence tests and the `bench_restart` baseline,
//! exactly as [`crate::UndoMode::BoxedReference`] is kept for the journal.

use crate::cas::{ChunkStore, CHUNK_SIZE};
use crate::heap::{Heap, Obj};
use crate::journal::{fnv1a_bytes, fnv1a_u64, IntegrityError, FNV_OFFSET};

/// One manifest row: an object's identity, snapshot epoch, byte accounting
/// and chunk references.
struct ImageEntry {
    name: &'static str,
    /// The object's dirty epoch when the snapshot was taken. Epoch equality
    /// against the live object is what classifies it clean (skip) or dirty
    /// (re-chunk on clone, write back on restore).
    epoch: u64,
    /// `approx_bytes` of the object at snapshot time (Table VI accounting).
    abytes: usize,
    payload: EntryPayload,
}

enum EntryPayload {
    /// Byte-backed payload (`Vec<u8>`), split into [`CHUNK_SIZE`] pages.
    Bytes {
        /// Total payload length; the referenced chunks concatenate to it.
        len: usize,
        /// The holder's dynamic-size accounting at snapshot time, restored
        /// verbatim so accounting never drifts across a restore.
        extra_bytes: usize,
        chunks: Vec<u64>,
    },
    /// Any other payload: one whole-object chunk.
    Opaque { chunk: u64 },
}

/// A copy-on-write snapshot manifest of a heap's object graph.
///
/// Taken right after a server finishes initialization
/// ([`Heap::clone_image`]) and written back over the live heap
/// ([`Heap::restore_image`]) for *stateless* restarts. Its
/// [`bytes`](HeapImage::bytes) are the per-copy Table VI "+clone" overhead;
/// the pool-wide deduped figure comes from the shared [`ChunkStore`].
///
/// Images hold chunk references, not chunk data: drop one through
/// [`HeapImage::release`] so the store's refcounts stay balanced.
pub struct HeapImage {
    entries: Vec<ImageEntry>,
    heap_id: u32,
    bytes: usize,
    /// Manifest digest captured at [`Heap::clone_image`] time: covers the
    /// object table and every chunk digest, chaining the image into the same
    /// FNV-1a integrity scheme as the undo journal. Verified by
    /// [`HeapImage::verify`] before the recovery path trusts the manifest;
    /// chunk *content* is verified against the chunk digests separately
    /// (only for the chunks a restore actually reads).
    digest: u64,
}

impl std::fmt::Debug for HeapImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapImage")
            .field("objects", &self.entries.len())
            .field("chunks", &self.chunk_ref_count())
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// Per-restore effort breakdown returned by [`Heap::restore_image`]: how
/// much of the heap was clean (skipped) versus dirty (verified and written
/// back). `osiris_restart_chunks_total{kind=...}` and the O(dirty) restart
/// cost model are fed from these numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreStats {
    /// Objects whose live epoch matched the manifest (not touched).
    pub clean_objects: usize,
    /// Objects written back from chunks.
    pub dirty_objects: usize,
    /// Chunk references belonging to clean objects (not read).
    pub clean_chunks: u64,
    /// Chunk references verified and copied back.
    pub dirty_chunks: u64,
    /// Payload bytes actually copied back into the heap.
    pub bytes_restored: usize,
}

/// Manifest digest: heap identity, object table (names, epochs, sizes) and
/// every chunk digest, in order.
fn manifest_digest(heap_id: u32, entries: &[ImageEntry]) -> u64 {
    let d = fnv1a_u64(FNV_OFFSET, u64::from(heap_id));
    entries_digest(d, entries)
}

/// The heap-id-independent tail of [`manifest_digest`]: object table and
/// chunk digests only. Two manifests with equal entry digests describe the
/// same state even when they belong to different heap instances — the
/// comparison the fork path uses to check a forked boot produced the same
/// pristine pool as its donor.
fn entries_digest(seed: u64, entries: &[ImageEntry]) -> u64 {
    let mut d = fnv1a_u64(seed, entries.len() as u64);
    for (i, e) in entries.iter().enumerate() {
        d = fnv1a_u64(d, i as u64);
        d = fnv1a_bytes(d, e.name.as_bytes());
        d = fnv1a_u64(d, e.epoch);
        d = fnv1a_u64(d, e.abytes as u64);
        match &e.payload {
            EntryPayload::Bytes {
                len,
                extra_bytes,
                chunks,
            } => {
                d = fnv1a_u64(d, 1);
                d = fnv1a_u64(d, *len as u64);
                d = fnv1a_u64(d, *extra_bytes as u64);
                d = fnv1a_u64(d, chunks.len() as u64);
                for c in chunks {
                    d = fnv1a_u64(d, *c);
                }
            }
            EntryPayload::Opaque { chunk } => {
                d = fnv1a_u64(d, 2);
                d = fnv1a_u64(d, *chunk);
            }
        }
    }
    d
}

/// Chunks one object into the store and returns its manifest row.
fn chunk_object(o: &Obj, store: &mut ChunkStore) -> ImageEntry {
    let payload = match o.data.byte_holder() {
        Some(h) => EntryPayload::Bytes {
            len: h.value.len(),
            extra_bytes: h.extra_bytes,
            chunks: h
                .value
                .chunks(CHUNK_SIZE)
                .map(|c| store.insert_bytes(c))
                .collect(),
        },
        None => EntryPayload::Opaque {
            chunk: store.insert_opaque(&*o.data),
        },
    };
    ImageEntry {
        name: o.name,
        epoch: o.epoch,
        abytes: o.data.approx_bytes(),
        payload,
    }
}

impl ImageEntry {
    /// Re-references this entry for a successor manifest: increfs every
    /// chunk and clones the row. The clean-object path of
    /// [`Heap::clone_image`] — no content is re-read or re-hashed.
    fn reshare(&self, store: &mut ChunkStore) -> ImageEntry {
        let payload = match &self.payload {
            EntryPayload::Bytes {
                len,
                extra_bytes,
                chunks,
            } => {
                for c in chunks {
                    store.incref(*c);
                }
                EntryPayload::Bytes {
                    len: *len,
                    extra_bytes: *extra_bytes,
                    chunks: chunks.clone(),
                }
            }
            EntryPayload::Opaque { chunk } => {
                store.incref(*chunk);
                EntryPayload::Opaque { chunk: *chunk }
            }
        };
        ImageEntry {
            name: self.name,
            epoch: self.epoch,
            abytes: self.abytes,
            payload,
        }
    }

    fn chunk_count(&self) -> u64 {
        match &self.payload {
            EntryPayload::Bytes { chunks, .. } => chunks.len() as u64,
            EntryPayload::Opaque { .. } => 1,
        }
    }
}

impl Heap {
    /// Takes a snapshot manifest of this heap into `store`.
    ///
    /// With `prev` — the manifest this snapshot supersedes — objects whose
    /// dirty epoch is unchanged reuse the predecessor's chunk references
    /// outright (a refcount bump per chunk); only dirty objects are
    /// re-chunked and re-hashed. Chunk content identical to anything already
    /// resident (from any image of any heap) is deduplicated by the store.
    pub fn clone_image(&self, store: &mut ChunkStore, prev: Option<&HeapImage>) -> HeapImage {
        let prev = prev.filter(|p| p.heap_id == self.id());
        let mut entries = Vec::with_capacity(self.objs.len());
        for (i, o) in self.objs.iter().enumerate() {
            let reused = prev
                .and_then(|p| p.entries.get(i))
                .filter(|e| e.epoch == o.epoch);
            entries.push(match reused {
                Some(e) => e.reshare(store),
                None => chunk_object(o, store),
            });
        }
        let bytes = entries.iter().map(|e| e.abytes).sum();
        let digest = manifest_digest(self.id(), &entries);
        HeapImage {
            entries,
            heap_id: self.id(),
            bytes,
            digest,
        }
    }

    /// Replaces this heap's contents with `image`, touching only objects
    /// whose dirty epoch diverges from the manifest — O(dirty), not O(heap)
    /// — and discarding the undo log.
    ///
    /// All verification happens *before* any object is mutated: the manifest
    /// digest, the manifest-versus-store byte accounting, and the content
    /// digest of every chunk the restore will read. On any
    /// [`IntegrityError`] the heap is left untouched so the caller can fall
    /// back (the kernel degrades to the next recovery rung).
    ///
    /// Existing handles remain valid because object ids are positional and
    /// the image preserves allocation order.
    ///
    /// # Panics
    ///
    /// Panics if the image was taken from a different heap.
    pub fn restore_image(
        &mut self,
        image: &HeapImage,
        store: &ChunkStore,
    ) -> Result<RestoreStats, IntegrityError> {
        assert_eq!(
            image.heap_id,
            self.id(),
            "image belongs to a different heap"
        );
        image.verify()?;
        // The `bytes()` total summed at clone time must still match the
        // manifest rows (drift here means the accounting Table VI reports
        // was wrong); checked against the store below for dirty rows.
        let row_bytes: usize = image.entries.iter().map(|e| e.abytes).sum();
        if row_bytes != image.bytes {
            return Err(IntegrityError::ImageBytes {
                expected: image.bytes as u64,
                actual: row_bytes as u64,
            });
        }
        assert!(
            image.entries.len() <= self.objs.len(),
            "image has more objects than the live heap"
        );

        // Pass 1 — verify every chunk a dirty object will read, and check
        // the store's byte accounting against the manifest's claimed length.
        let mut stats = RestoreStats::default();
        for (i, e) in image.entries.iter().enumerate() {
            if self.epoch_of(i) == e.epoch {
                stats.clean_objects += 1;
                stats.clean_chunks += e.chunk_count();
                continue;
            }
            stats.dirty_objects += 1;
            stats.dirty_chunks += e.chunk_count();
            match &e.payload {
                EntryPayload::Bytes { len, chunks, .. } => {
                    let mut stored = 0usize;
                    for c in chunks {
                        store.verify_chunk(*c)?;
                        stored += store.chunk_bytes(*c).expect("chunk verified resident");
                    }
                    if stored != *len {
                        return Err(IntegrityError::ImageBytes {
                            expected: *len as u64,
                            actual: stored as u64,
                        });
                    }
                    stats.bytes_restored += len;
                }
                EntryPayload::Opaque { chunk } => {
                    store.verify_chunk(*chunk)?;
                    stats.bytes_restored += e.abytes;
                }
            }
        }

        // Pass 2 — write dirty objects back. Byte payloads are rebuilt in
        // place (clear + extend within existing capacity: allocation-free
        // when the live buffer did not shrink its capacity); opaque payloads
        // are cloned out of the store. Restored objects take the manifest
        // epoch, so the heap ends up clean with respect to the image.
        for (i, e) in image.entries.iter().enumerate() {
            if self.epoch_of(i) == e.epoch {
                continue;
            }
            let obj = &mut self.objs[i];
            assert_eq!(obj.name, e.name, "object table shape changed");
            match &e.payload {
                EntryPayload::Bytes {
                    extra_bytes,
                    chunks,
                    ..
                } => {
                    let h = obj
                        .data
                        .byte_holder_mut()
                        .expect("manifest byte row over non-byte object");
                    h.value.clear();
                    for c in chunks {
                        h.value
                            .extend_from_slice(store.bytes_of(*c).expect("chunk verified"));
                    }
                    h.extra_bytes = *extra_bytes;
                }
                EntryPayload::Opaque { chunk } => {
                    obj.data = store.opaque_of(*chunk).expect("chunk verified").clone_obj();
                }
            }
            self.set_epoch(i, e.epoch);
        }
        // Objects allocated after the snapshot are not part of the restored
        // state (same semantics as the historical deep restore).
        self.objs.truncate(image.entries.len());
        self.discard_log();
        Ok(stats)
    }

    /// Fork support: replaces this heap's contents with a manifest taken
    /// from a *different* heap instance (the donor), touching only objects
    /// that are provably identical already — O(dirty), like
    /// [`Heap::restore_image`], but across heap-id boundaries.
    ///
    /// Correctness of the clean-object skip rests on the *parent-line*
    /// argument: an object is skipped only when its live epoch equals the
    /// manifest epoch **and** lies at or below this heap's adoption floor.
    /// Epochs at or below the floor were either minted by the deterministic
    /// boot sequence this heap shares with the donor, or stamped by a
    /// previous adoption from the same donor line — both identify the same
    /// write, hence the same content, as the donor's equal epoch. Epochs
    /// above the floor were minted by this heap's own post-fork writes and
    /// are never trusted to match a donor manifest numerically, however the
    /// counters happen to collide. Before the first adoption the floor is
    /// the current write counter, which is only sound on a freshly booted
    /// heap — the caller (the kernel's snapshot-adopt path) guarantees it.
    ///
    /// `donor_write_epoch` is the donor's write counter at snapshot time;
    /// this heap's counter is raised to it so the stamped donor epochs stay
    /// below the counter, and the floor is then advanced to the raised
    /// counter. All verification happens before any object is mutated, as
    /// in [`Heap::restore_image`].
    ///
    /// # Panics
    ///
    /// Panics if the object tables disagree in length or names — forks of
    /// the same configuration always boot identical tables, so a mismatch is
    /// a programming error, not data corruption.
    pub fn adopt_image(
        &mut self,
        image: &HeapImage,
        store: &ChunkStore,
        donor_write_epoch: u64,
    ) -> Result<RestoreStats, IntegrityError> {
        image.verify()?;
        let row_bytes: usize = image.entries.iter().map(|e| e.abytes).sum();
        if row_bytes != image.bytes {
            return Err(IntegrityError::ImageBytes {
                expected: image.bytes as u64,
                actual: row_bytes as u64,
            });
        }
        assert_eq!(
            image.entries.len(),
            self.objs.len(),
            "adopting heap's object table must match the donor's"
        );
        let floor = self.adopt_floor.unwrap_or_else(|| self.write_epoch());
        let clean = |live: u64, e: &ImageEntry| live == e.epoch && e.epoch <= floor;

        // Pass 1 — verify every chunk a dirty object will read.
        let mut stats = RestoreStats::default();
        for (i, e) in image.entries.iter().enumerate() {
            if clean(self.epoch_of(i), e) {
                stats.clean_objects += 1;
                stats.clean_chunks += e.chunk_count();
                continue;
            }
            stats.dirty_objects += 1;
            stats.dirty_chunks += e.chunk_count();
            match &e.payload {
                EntryPayload::Bytes { len, chunks, .. } => {
                    let mut stored = 0usize;
                    for c in chunks {
                        store.verify_chunk(*c)?;
                        stored += store.chunk_bytes(*c).expect("chunk verified resident");
                    }
                    if stored != *len {
                        return Err(IntegrityError::ImageBytes {
                            expected: *len as u64,
                            actual: stored as u64,
                        });
                    }
                    stats.bytes_restored += len;
                }
                EntryPayload::Opaque { chunk } => {
                    store.verify_chunk(*chunk)?;
                    stats.bytes_restored += e.abytes;
                }
            }
        }

        // Pass 2 — write dirty objects back and stamp donor epochs.
        self.raise_write_epoch(donor_write_epoch);
        for (i, e) in image.entries.iter().enumerate() {
            if clean(self.epoch_of(i), e) {
                continue;
            }
            let obj = &mut self.objs[i];
            assert_eq!(obj.name, e.name, "object table shape differs from donor");
            match &e.payload {
                EntryPayload::Bytes {
                    extra_bytes,
                    chunks,
                    ..
                } => {
                    let h = obj
                        .data
                        .byte_holder_mut()
                        .expect("manifest byte row over non-byte object");
                    h.value.clear();
                    for c in chunks {
                        h.value
                            .extend_from_slice(store.bytes_of(*c).expect("chunk verified"));
                    }
                    h.extra_bytes = *extra_bytes;
                }
                EntryPayload::Opaque { chunk } => {
                    obj.data = store.opaque_of(*chunk).expect("chunk verified").clone_obj();
                }
            }
            self.set_epoch(i, e.epoch);
        }
        self.discard_log();
        self.adopt_floor = Some(self.write_epoch());
        Ok(stats)
    }

    /// Whether this heap is clean with respect to `image`: same object
    /// table, every live epoch matching the manifest. The pool-refresh path
    /// uses this to re-snapshot only components whose pristine state is
    /// genuinely current.
    pub fn clean_for(&self, image: &HeapImage) -> bool {
        image.heap_id == self.id()
            && image.entries.len() == self.objs.len()
            && image
                .entries
                .iter()
                .enumerate()
                .all(|(i, e)| e.epoch == self.epoch_of(i))
    }
}

impl HeapImage {
    /// Approximate resident size of the snapshotted state in bytes — the
    /// *per-copy* Table VI "+clone" figure (shared chunks counted once per
    /// image; cross-pool dedup is the store's [`ChunkStore::resident_bytes`]).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of objects captured.
    pub fn object_count(&self) -> usize {
        self.entries.len()
    }

    /// Number of chunk references this manifest holds (with multiplicity).
    pub fn chunk_ref_count(&self) -> u64 {
        self.entries.iter().map(ImageEntry::chunk_count).sum()
    }

    /// Every chunk digest this manifest references, in manifest order (with
    /// multiplicity). Used for pool-wide dedup attribution.
    pub fn chunk_refs(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries
            .iter()
            .flat_map(|e| match &e.payload {
                EntryPayload::Bytes { chunks, .. } => chunks.as_slice(),
                EntryPayload::Opaque { chunk } => std::slice::from_ref(chunk),
            })
            .copied()
    }

    /// Bytes a restore of `heap` from this image would copy back: the
    /// `abytes` of every manifest row whose epoch diverges from the live
    /// object. This is the O(dirty) figure the kernel's recovery cost model
    /// charges for state transfer, replacing the old O(heap) residency term.
    pub fn dirty_bytes_for(&self, heap: &Heap) -> usize {
        if self.heap_id != heap.id() {
            return self.bytes;
        }
        self.entries
            .iter()
            .enumerate()
            .filter(|(i, e)| *i >= heap.object_count() || heap.epoch_of(*i) != e.epoch)
            .map(|(_, e)| e.abytes)
            .sum()
    }

    /// The manifest digest captured when the image was cloned.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Heap-id-independent digest over the object table and chunk digests.
    /// Equal content digests mean equal described state, even across heap
    /// instances (a fork and its donor have distinct heap ids, so their
    /// [`HeapImage::digest`] values never match; this one does).
    pub fn content_digest(&self) -> u64 {
        entries_digest(FNV_OFFSET, &self.entries)
    }

    /// Recomputes the manifest digest and compares it against the one
    /// captured at clone time. Cheap — O(object table), no chunk content is
    /// read. [`Heap::restore_image`] additionally verifies the content of
    /// every chunk it reads.
    pub fn verify(&self) -> Result<(), IntegrityError> {
        let actual = manifest_digest(self.heap_id, &self.entries);
        if actual != self.digest {
            return Err(IntegrityError::ImageDigest {
                expected: self.digest,
                actual,
            });
        }
        Ok(())
    }

    /// Full scrub: manifest digest plus the content of every referenced
    /// chunk. The expensive path, for tests and background integrity sweeps.
    pub fn verify_full(&self, store: &ChunkStore) -> Result<(), IntegrityError> {
        self.verify()?;
        for c in self.chunk_refs() {
            store.verify_chunk(c)?;
        }
        Ok(())
    }

    /// Releases every chunk reference this manifest holds back to `store`.
    /// Consumes the image: a released manifest can no longer be restored.
    pub fn release(self, store: &mut ChunkStore) {
        for c in self.chunk_refs() {
            store.release(c);
        }
    }

    /// Corruption-injection test support: flips one bit of the stored
    /// digest, making [`HeapImage::verify`] fail deterministically.
    pub fn corrupt_digest_for_test(&mut self) {
        self.digest ^= 1;
    }

    /// Corruption-injection test support: silently inflates the manifest's
    /// byte total *and* re-seals the digest, so only the restore-time
    /// accounting cross-check can catch the drift.
    pub fn corrupt_bytes_for_test(&mut self) {
        self.bytes += 1;
        self.digest = manifest_digest(self.heap_id, &self.entries);
    }
}

// ---------------------------------------------------------------------------
// Deep-copy reference implementation
// ---------------------------------------------------------------------------

/// Structural FNV-1a digest over a deep image's object graph (the historical
/// image digest: object order, names, per-object resident sizes).
fn deep_digest(heap_id: u32, objs: &[Obj]) -> u64 {
    let mut d = fnv1a_u64(FNV_OFFSET, u64::from(heap_id));
    d = fnv1a_u64(d, objs.len() as u64);
    for (i, o) in objs.iter().enumerate() {
        d = fnv1a_u64(d, i as u64);
        d = fnv1a_bytes(d, o.name.as_bytes());
        d = fnv1a_u64(d, o.data.approx_bytes() as u64);
    }
    d
}

/// The historical deep copy of a heap's entire object graph, kept as the
/// reference implementation for differential tests and as the O(heap)
/// baseline in `bench_restart` (the pre-COW behavior).
pub struct DeepImage {
    objs: Vec<Obj>,
    heap_id: u32,
    bytes: usize,
    digest: u64,
}

impl std::fmt::Debug for DeepImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeepImage")
            .field("objects", &self.objs.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Heap {
    /// Takes a deep snapshot of every object in this heap (reference path).
    pub fn clone_image_deep(&self) -> DeepImage {
        let objs: Vec<Obj> = self
            .objs
            .iter()
            .map(|o| Obj {
                name: o.name,
                data: o.data.clone_obj(),
                epoch: o.epoch,
            })
            .collect();
        let bytes = objs.iter().map(|o| o.data.approx_bytes()).sum();
        let digest = deep_digest(self.id(), &objs);
        DeepImage {
            objs,
            heap_id: self.id(),
            bytes,
            digest,
        }
    }

    /// Replaces this heap's contents with a deep image — every object is
    /// cloned back unconditionally, O(heap) — and discards the undo log.
    ///
    /// # Panics
    ///
    /// Panics if the image was taken from a different heap.
    pub fn restore_image_deep(&mut self, image: &DeepImage) {
        assert_eq!(
            image.heap_id,
            self.id(),
            "image belongs to a different heap"
        );
        self.objs = image
            .objs
            .iter()
            .map(|o| Obj {
                name: o.name,
                data: o.data.clone_obj(),
                epoch: o.epoch,
            })
            .collect();
        self.discard_log();
    }
}

impl DeepImage {
    /// Approximate resident size of the image in bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of objects captured.
    pub fn object_count(&self) -> usize {
        self.objs.len()
    }

    /// Recomputes the structural digest and compares it against the one
    /// captured at clone time.
    pub fn verify(&self) -> Result<(), IntegrityError> {
        let actual = deep_digest(self.heap_id, &self.objs);
        if actual != self.digest {
            return Err(IntegrityError::ImageDigest {
                expected: self.digest,
                actual,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::cas::ChunkStore;
    use crate::Heap;

    #[test]
    fn image_restores_initial_state() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        let v = h.alloc_vec::<u8>("v");
        v.push(&mut h, 42);
        let mut store = ChunkStore::new();
        let img = h.clone_image(&mut store, None);
        c.set(&mut h, 99);
        v.push(&mut h, 43);
        let stats = h.restore_image(&img, &store).expect("restore");
        assert_eq!(c.get(&h), 1);
        assert_eq!(v.snapshot(&h), vec![42]);
        assert_eq!(stats.dirty_objects, 2);
        img.release(&mut store);
        assert!(store.is_empty());
    }

    #[test]
    fn restore_skips_clean_objects() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, &[7u8; 9000]);
        let mut store = ChunkStore::new();
        let img = h.clone_image(&mut store, None);
        c.set(&mut h, 2); // only the cell is dirtied
        let stats = h.restore_image(&img, &store).expect("restore");
        assert_eq!(stats.dirty_objects, 1);
        assert_eq!(stats.clean_objects, 1);
        assert_eq!(stats.clean_chunks, 3, "9000 B buffer = 3 pages, untouched");
        assert_eq!(c.get(&h), 1);
        assert!(h.clean_for(&img));
    }

    #[test]
    fn incremental_clone_reuses_clean_chunks() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, &[3u8; 8192]);
        let c = h.alloc_cell("x", 0u64);
        let mut store = ChunkStore::new();
        let first = h.clone_image(&mut store, None);
        let inserts_after_first = store.inserts();
        c.set(&mut h, 1);
        let second = h.clone_image(&mut store, Some(&first));
        // Only the dirty cell was re-chunked; the buffer pages were reshared
        // without touching content.
        assert_eq!(store.inserts(), inserts_after_first + 1);
        first.release(&mut store);
        // The second image still restores after its predecessor is gone.
        c.set(&mut h, 9);
        h.restore_image(&second, &store).expect("restore");
        assert_eq!(c.get(&h), 1);
        second.release(&mut store);
        assert!(store.is_empty());
    }

    #[test]
    fn image_is_independent_of_live_mutations() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", vec![1, 2, 3]);
        let mut store = ChunkStore::new();
        let img = h.clone_image(&mut store, None);
        c.update(&mut h, |v| v.push(4));
        h.restore_image(&img, &store).expect("restore");
        assert_eq!(c.get(&h), vec![1, 2, 3]);
        img.release(&mut store);
    }

    #[test]
    fn image_bytes_match_resident_estimate() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, &[1u8; 1000]);
        let mut store = ChunkStore::new();
        let img = h.clone_image(&mut store, None);
        assert_eq!(img.bytes(), h.resident_bytes());
        assert_eq!(img.object_count(), 1);
        img.release(&mut store);
    }

    #[test]
    #[should_panic(expected = "different heap")]
    fn foreign_image_is_rejected() {
        let a = Heap::new("a");
        let mut b = Heap::new("b");
        let mut store = ChunkStore::new();
        let img = a.clone_image(&mut store, None);
        let _ = b.restore_image(&img, &store);
    }

    #[test]
    fn restore_discards_undo_log() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 0u32);
        let mut store = ChunkStore::new();
        let img = h.clone_image(&mut store, None);
        h.set_logging(true);
        c.set(&mut h, 5);
        assert!(h.log_len() > 0);
        h.restore_image(&img, &store).expect("restore");
        assert_eq!(h.log_len(), 0);
        img.release(&mut store);
    }

    #[test]
    fn corrupt_manifest_fails_before_mutation() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        let mut store = ChunkStore::new();
        let mut img = h.clone_image(&mut store, None);
        img.corrupt_digest_for_test();
        c.set(&mut h, 7);
        assert!(h.restore_image(&img, &store).is_err());
        assert_eq!(c.get(&h), 7, "failed restore must not touch the heap");
    }

    #[test]
    fn byte_accounting_drift_is_an_integrity_error() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, &[5u8; 100]);
        let mut store = ChunkStore::new();
        let mut img = h.clone_image(&mut store, None);
        img.corrupt_bytes_for_test();
        b.write_at(&mut h, 0, &[6u8; 100]);
        assert!(matches!(
            h.restore_image(&img, &store),
            Err(crate::IntegrityError::ImageBytes { .. })
        ));
    }

    #[test]
    fn corrupt_chunk_fails_before_mutation() {
        let mut h = Heap::new("t");
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, &[9u8; 5000]);
        let mut store = ChunkStore::new();
        let img = h.clone_image(&mut store, None);
        store.corrupt_byte_chunk_for_test(0, 17, 1).expect("chunk");
        b.write_at(&mut h, 10, &[1u8; 4]); // dirty the buffer
        let before = b.snapshot(&h);
        assert!(matches!(
            h.restore_image(&img, &store),
            Err(crate::IntegrityError::ChunkDigest { .. })
        ));
        assert_eq!(b.snapshot(&h), before, "heap untouched on chunk damage");
        assert!(img.verify_full(&store).is_err());
    }

    #[test]
    fn deep_reference_roundtrip() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        let deep = h.clone_image_deep();
        assert!(deep.verify().is_ok());
        c.set(&mut h, 2);
        h.restore_image_deep(&deep);
        assert_eq!(c.get(&h), 1);
        assert_eq!(deep.object_count(), 1);
        assert!(deep.bytes() > 0);
    }

    #[test]
    fn cow_restore_matches_deep_restore() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 10u64);
        let b = h.alloc_buf("b");
        b.write_at(&mut h, 0, &[4u8; 6000]);
        let mut store = ChunkStore::new();
        let img = h.clone_image(&mut store, None);
        let deep = h.clone_image_deep();
        let base = h.state_digest();
        c.set(&mut h, 11);
        b.write_at(&mut h, 4100, &[8u8; 16]);
        h.restore_image_deep(&deep);
        assert_eq!(h.state_digest(), base);
        c.set(&mut h, 11);
        b.write_at(&mut h, 4100, &[8u8; 16]);
        h.restore_image(&img, &store).expect("restore");
        assert_eq!(h.state_digest(), base);
        img.release(&mut store);
    }
}
