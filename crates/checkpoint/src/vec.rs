//! `PVec<T>`: a checkpointed growable array.

use std::fmt;
use std::marker::PhantomData;

use crate::heap::{Heap, HeapValue, Holder, ObjId};

/// A handle to a `Vec<T>` stored in a [`Heap`], with undo-logged mutation.
///
/// ```
/// # use osiris_checkpoint::Heap;
/// let mut heap = Heap::new("demo");
/// let v = heap.alloc_vec::<u32>("frames");
/// v.push(&mut heap, 7);
/// assert_eq!(v.get(&heap, 0), Some(7));
/// ```
pub struct PVec<T> {
    id: ObjId,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for PVec<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PVec<T> {}

impl<T> fmt::Debug for PVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PVec({:?})", self.id)
    }
}

fn refresh_bytes<T: HeapValue>(holder: &mut Holder<Vec<T>>) {
    holder.extra_bytes = holder.value.len() * std::mem::size_of::<T>();
}

impl Heap {
    /// Allocates a new empty [`PVec`] named `name`.
    pub fn alloc_vec<T: HeapValue>(&mut self, name: &'static str) -> PVec<T> {
        PVec {
            id: self.alloc_obj(name, Vec::<T>::new()),
            _marker: PhantomData,
        }
    }

    /// Allocates a [`PVec`] pre-filled with `len` clones of `value`.
    ///
    /// Used by servers (notably VM) that pre-allocate large tables so that
    /// their clone images do not depend on allocation at recovery time.
    pub fn alloc_vec_filled<T: HeapValue>(
        &mut self,
        name: &'static str,
        value: T,
        len: usize,
    ) -> PVec<T> {
        let data = vec![value; len];
        let id = self.alloc_obj(name, data);
        let extra = len * std::mem::size_of::<T>();
        self.holder_mut::<Vec<T>>(id).extra_bytes = extra;
        PVec {
            id,
            _marker: PhantomData,
        }
    }
}

impl<T: HeapValue> PVec<T> {
    /// Number of elements.
    pub fn len(&self, heap: &Heap) -> usize {
        heap.holder::<Vec<T>>(self.id).value.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self, heap: &Heap) -> bool {
        self.len(heap) == 0
    }

    /// Returns a clone of the element at `index`, if present.
    pub fn get(&self, heap: &Heap, index: usize) -> Option<T> {
        heap.holder::<Vec<T>>(self.id).value.get(index).cloned()
    }

    /// Applies `f` to a shared reference of the whole vector.
    pub fn with<R>(&self, heap: &Heap, f: impl FnOnce(&[T]) -> R) -> R {
        f(&heap.holder::<Vec<T>>(self.id).value)
    }

    /// Returns a snapshot clone of the whole vector.
    pub fn snapshot(&self, heap: &Heap) -> Vec<T> {
        heap.holder::<Vec<T>>(self.id).value.clone()
    }

    /// Appends `value`, logging the inverse (a pop).
    pub fn push(&self, heap: &mut Heap, value: T) {
        heap.log_vec_push::<T>(self.id);
        let h = heap.holder_mut::<Vec<T>>(self.id);
        h.value.push(value);
        refresh_bytes(h);
    }

    /// Removes and returns the last element, logging the inverse.
    pub fn pop(&self, heap: &mut Heap) -> Option<T> {
        let last = heap.holder::<Vec<T>>(self.id).value.last().cloned()?;
        heap.log_vec_pop::<T>(self.id, &last);
        let h = heap.holder_mut::<Vec<T>>(self.id);
        h.value.pop();
        refresh_bytes(h);
        Some(last)
    }

    /// Overwrites the element at `index`, logging the old value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set(&self, heap: &mut Heap, index: usize, value: T) {
        assert!(index < self.len(heap), "PVec::set index out of bounds");
        heap.log_vec_set::<T>(self.id, index);
        heap.holder_mut::<Vec<T>>(self.id).value[index] = value;
    }

    /// Mutates the element at `index` in place, logging the old value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn update<R>(&self, heap: &mut Heap, index: usize, f: impl FnOnce(&mut T) -> R) -> R {
        assert!(index < self.len(heap), "PVec::update index out of bounds");
        heap.log_vec_set::<T>(self.id, index);
        f(&mut heap.holder_mut::<Vec<T>>(self.id).value[index])
    }

    /// Shortens the vector to `len`, logging the removed tail.
    pub fn truncate(&self, heap: &mut Heap, len: usize) {
        let cur = heap.holder::<Vec<T>>(self.id).value.len();
        if len >= cur {
            return;
        }
        heap.log_vec_truncate::<T>(self.id, len);
        let h = heap.holder_mut::<Vec<T>>(self.id);
        h.value.truncate(len);
        refresh_bytes(h);
    }

    /// Clears the vector, logging the full old contents.
    pub fn clear(&self, heap: &mut Heap) {
        self.truncate(heap, 0);
    }

    /// Calls `f` for each `(index, element)` pair.
    pub fn for_each(&self, heap: &Heap, mut f: impl FnMut(usize, &T)) {
        for (i, v) in heap.holder::<Vec<T>>(self.id).value.iter().enumerate() {
            f(i, v);
        }
    }

    /// Returns the index of the first element matching `pred`, if any.
    pub fn position(&self, heap: &Heap, pred: impl FnMut(&T) -> bool) -> Option<usize> {
        heap.holder::<Vec<T>>(self.id).value.iter().position(pred)
    }
}

#[cfg(test)]
mod tests {
    use crate::Heap;

    #[test]
    fn push_pop_set_roundtrip() {
        let mut h = Heap::new("t");
        let v = h.alloc_vec::<i32>("v");
        v.push(&mut h, 1);
        v.push(&mut h, 2);
        assert_eq!(v.pop(&mut h), Some(2));
        v.set(&mut h, 0, 5);
        assert_eq!(v.snapshot(&h), vec![5]);
    }

    #[test]
    fn rollback_restores_structure() {
        let mut h = Heap::new("t");
        let v = h.alloc_vec::<i32>("v");
        v.push(&mut h, 1);
        v.push(&mut h, 2);
        h.set_logging(true);
        let m = h.mark();
        v.push(&mut h, 3);
        v.set(&mut h, 0, 99);
        v.pop(&mut h);
        v.truncate(&mut h, 1);
        h.rollback_to(m);
        assert_eq!(v.snapshot(&h), vec![1, 2]);
    }

    #[test]
    fn repeated_set_of_same_index_coalesces() {
        let mut h = Heap::new("t");
        let v = h.alloc_vec::<u64>("v");
        v.push(&mut h, 0);
        v.push(&mut h, 0);
        h.set_logging(true);
        let m = h.mark();
        for i in 1..=10 {
            v.set(&mut h, 0, i);
            v.set(&mut h, 1, i * 100);
        }
        // One record per distinct index, not per store.
        assert_eq!(h.log_len(), 2);
        assert_eq!(h.stats().coalesced_writes, 18);
        h.rollback_to(m);
        assert_eq!(v.snapshot(&h), vec![0, 0]);
    }

    #[test]
    fn filled_allocation_accounts_bytes() {
        let mut h = Heap::new("t");
        let _v = h.alloc_vec_filled::<u64>("frames", 0, 1024);
        assert!(h.resident_bytes() >= 1024 * 8);
    }

    #[test]
    fn position_and_for_each() {
        let mut h = Heap::new("t");
        let v = h.alloc_vec::<i32>("v");
        for i in 0..5 {
            v.push(&mut h, i);
        }
        assert_eq!(v.position(&h, |x| *x == 3), Some(3));
        let mut sum = 0;
        v.for_each(&h, |_, x| sum += *x);
        assert_eq!(sum, 10);
    }

    #[test]
    fn pop_empty_returns_none_and_logs_nothing() {
        let mut h = Heap::new("t");
        let v = h.alloc_vec::<i32>("v");
        h.set_logging(true);
        assert_eq!(v.pop(&mut h), None);
        assert_eq!(h.log_len(), 0);
    }

    #[test]
    fn droppable_elements_roll_back_exactly() {
        let mut h = Heap::new("t");
        let v = h.alloc_vec::<String>("v");
        v.push(&mut h, "a".into());
        h.set_logging(true);
        let m = h.mark();
        v.push(&mut h, "b".into());
        v.set(&mut h, 0, "A".into());
        v.pop(&mut h);
        v.clear(&mut h);
        h.rollback_to(m);
        assert_eq!(v.snapshot(&h), vec!["a".to_string()]);
    }
}
