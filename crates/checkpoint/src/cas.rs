//! The content-addressed chunk store backing copy-on-write heap images.
//!
//! A [`crate::HeapImage`] is no longer a deep object copy: it is a
//! *manifest* of chunk digests resolved against a [`ChunkStore`] shared by
//! every image in the Recovery Server's clone pool. Chunks are refcounted
//! and deduplicated by content, so two components whose pristine state
//! shares pages (zero-filled buffers, identical tables) pay for those pages
//! once — the `velo-rift` shared read-only pool model, with each image
//! acting as a private view.
//!
//! Two chunk shapes exist:
//!
//! * **Byte chunks** — byte-backed objects (`Vec<u8>`: every [`crate::PBuf`]
//!   and `PVec<u8>`) are split into [`CHUNK_SIZE`] logical pages keyed by
//!   the FNV-1a digest of their content. This is where real deduplication
//!   and O(dirty) restore savings come from: the bulk of server state is
//!   buffer pages.
//! * **Opaque chunks** — any other payload is stored as one whole-object
//!   clone keyed by a digest over its type identity and `Debug` rendering
//!   (allocation-free to compute). Dedup still applies when two objects
//!   hold equal values of the same type.
//!
//! The digest that keys a chunk *is* its integrity check: verification
//! recomputes the content digest and compares it to the key, so a single
//! bit flip in any stored chunk is caught before a restore trusts it.

use std::collections::BTreeMap;
use std::fmt;

use crate::heap::AnyObj;
use crate::journal::{fnv1a_bytes, IntegrityError, FNV_OFFSET, FNV_PRIME};

/// Logical page size for byte-backed payloads: objects serialize into
/// fixed-size chunks of this many bytes (the last chunk may be shorter).
pub const CHUNK_SIZE: usize = 4096;

/// Content digest for byte chunks: four interleaved FNV-1a lanes folded
/// into one 64-bit value.
///
/// Plain byte-wise FNV-1a is one multiply-latency dependency chain (~4
/// cycles per byte), and this digest is recomputed for every dirty chunk a
/// COW restore copies back — it sits squarely on the recovery-latency
/// path. This variant keeps the FNV-1a step (xor, then multiply by the FNV
/// prime) but consumes 8-byte little-endian words striped across four
/// independent lanes, so the CPU pipelines the multiplies and each one
/// covers a full word: ~32x the throughput of the byte-serial loop. A
/// single bit flip still changes the digest — the multiply is a bijection
/// mod 2^64, so a changed word always changes its lane. The fold seeds
/// with the chunk length so truncated or padded content changes the key.
pub(crate) fn chunk_digest(bytes: &[u8]) -> u64 {
    let mut lanes = [
        FNV_OFFSET ^ 1,
        FNV_OFFSET ^ 2,
        FNV_OFFSET ^ 3,
        FNV_OFFSET ^ 4,
    ];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            let w = u64::from_le_bytes(word.try_into().expect("8-byte word"));
            *lane = (*lane ^ w).wrapping_mul(FNV_PRIME);
        }
    }
    for (i, b) in blocks.remainder().iter().enumerate() {
        let lane = &mut lanes[i % 4];
        *lane = (*lane ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
    }
    let mut d = fnv1a_bytes(FNV_OFFSET, &(bytes.len() as u64).to_le_bytes());
    for lane in lanes {
        d = fnv1a_bytes(d, &lane.to_le_bytes());
    }
    d
}

/// An allocation-free FNV-1a sink for `fmt::Write`, used to digest the
/// `Debug` rendering of opaque payloads without materializing the string.
pub(crate) struct FnvWriter(pub(crate) u64);

impl fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0 = fnv1a_bytes(self.0, s.as_bytes());
        Ok(())
    }
}

/// One stored chunk: its reference count and payload.
struct ChunkEntry {
    refs: u64,
    data: ChunkData,
}

enum ChunkData {
    /// A page of a byte-backed payload.
    Bytes(Box<[u8]>),
    /// A whole-object clone of a non-byte payload.
    Opaque(Box<dyn AnyObj>),
}

impl ChunkData {
    fn resident_bytes(&self) -> usize {
        match self {
            ChunkData::Bytes(b) => b.len(),
            ChunkData::Opaque(o) => o.approx_bytes(),
        }
    }
}

/// A refcounted, content-addressed store of heap-image chunks.
///
/// Shared by every [`crate::HeapImage`] taken into it; identical content is
/// stored once no matter how many images (or how many objects within one
/// image) reference it. Images must be explicitly [released]
/// (`crate::HeapImage::release`) back into the store; the CAS property
/// tests pin down that refcounts neither leak nor double-free across
/// clone/restore/release interleavings.
pub struct ChunkStore {
    chunks: BTreeMap<u64, ChunkEntry>,
    resident_bytes: usize,
    dedup_hits: u64,
    inserts: u64,
}

impl Default for ChunkStore {
    fn default() -> Self {
        ChunkStore::new()
    }
}

impl fmt::Debug for ChunkStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChunkStore")
            .field("chunks", &self.chunks.len())
            .field("resident_bytes", &self.resident_bytes)
            .field("dedup_hits", &self.dedup_hits)
            .finish()
    }
}

impl ChunkStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ChunkStore {
            chunks: BTreeMap::new(),
            resident_bytes: 0,
            dedup_hits: 0,
            inserts: 0,
        }
    }

    /// Inserts (or increfs) one byte chunk, returning its content digest.
    pub(crate) fn insert_bytes(&mut self, bytes: &[u8]) -> u64 {
        let digest = chunk_digest(bytes);
        self.inserts += 1;
        if let Some(entry) = self.chunks.get_mut(&digest) {
            match &entry.data {
                ChunkData::Bytes(stored) => {
                    assert_eq!(
                        stored.len(),
                        bytes.len(),
                        "FNV chunk digest collision (byte length mismatch)"
                    );
                    debug_assert_eq!(&stored[..], bytes, "FNV chunk digest collision");
                }
                ChunkData::Opaque(_) => panic!("FNV chunk digest collision (kind mismatch)"),
            }
            entry.refs += 1;
            self.dedup_hits += 1;
            return digest;
        }
        self.resident_bytes += bytes.len();
        self.chunks.insert(
            digest,
            ChunkEntry {
                refs: 1,
                data: ChunkData::Bytes(bytes.into()),
            },
        );
        digest
    }

    /// Inserts (or increfs) one opaque whole-object chunk, returning its
    /// content digest.
    pub(crate) fn insert_opaque(&mut self, obj: &dyn AnyObj) -> u64 {
        let digest = obj.content_digest();
        self.inserts += 1;
        if let Some(entry) = self.chunks.get_mut(&digest) {
            assert!(
                matches!(entry.data, ChunkData::Opaque(_)),
                "FNV chunk digest collision (kind mismatch)"
            );
            entry.refs += 1;
            self.dedup_hits += 1;
            return digest;
        }
        let clone = obj.clone_obj();
        self.resident_bytes += clone.approx_bytes();
        self.chunks.insert(
            digest,
            ChunkEntry {
                refs: 1,
                data: ChunkData::Opaque(clone),
            },
        );
        digest
    }

    /// Takes one more reference on an existing chunk (manifest reuse of a
    /// clean object's chunk list).
    ///
    /// # Panics
    ///
    /// Panics if the chunk is not resident — a manifest may only re-reference
    /// chunks its predecessor holds alive.
    pub(crate) fn incref(&mut self, digest: u64) {
        self.chunks
            .get_mut(&digest)
            .expect("incref of non-resident chunk")
            .refs += 1;
    }

    /// Drops one reference; the chunk is freed when the count reaches zero.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is not resident (double free).
    pub(crate) fn release(&mut self, digest: u64) {
        let entry = self
            .chunks
            .get_mut(&digest)
            .expect("release of non-resident chunk");
        entry.refs -= 1;
        if entry.refs == 0 {
            let entry = self.chunks.remove(&digest).expect("entry just observed");
            self.resident_bytes -= entry.data.resident_bytes();
        }
    }

    /// The byte payload of a chunk, if it is resident and byte-shaped.
    pub(crate) fn bytes_of(&self, digest: u64) -> Option<&[u8]> {
        match &self.chunks.get(&digest)?.data {
            ChunkData::Bytes(b) => Some(b),
            ChunkData::Opaque(_) => None,
        }
    }

    /// The opaque payload of a chunk, if it is resident and object-shaped.
    pub(crate) fn opaque_of(&self, digest: u64) -> Option<&dyn AnyObj> {
        match &self.chunks.get(&digest)?.data {
            ChunkData::Bytes(_) => None,
            ChunkData::Opaque(o) => Some(&**o),
        }
    }

    /// Verifies one chunk: recomputes its content digest and compares it to
    /// the key it is stored under. Detects any bit flip in the payload.
    pub fn verify_chunk(&self, digest: u64) -> Result<(), IntegrityError> {
        let Some(entry) = self.chunks.get(&digest) else {
            return Err(IntegrityError::MissingChunk { digest });
        };
        let actual = match &entry.data {
            ChunkData::Bytes(b) => chunk_digest(b),
            ChunkData::Opaque(o) => o.content_digest(),
        };
        if actual != digest {
            return Err(IntegrityError::ChunkDigest {
                expected: digest,
                actual,
            });
        }
        Ok(())
    }

    /// Full-store scrub: verifies every resident chunk against its key.
    pub fn verify_all(&self) -> Result<(), IntegrityError> {
        for digest in self.chunks.keys() {
            self.verify_chunk(*digest)?;
        }
        Ok(())
    }

    /// Number of distinct chunks resident.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Bytes resident across all chunks (each shared chunk counted once).
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Insertions that deduplicated against an already-resident chunk.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// Total chunk insert attempts (hits plus misses).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Sum of reference counts over all resident chunks.
    pub fn total_refs(&self) -> u64 {
        self.chunks.values().map(|e| e.refs).sum()
    }

    /// Reference count of one chunk (0 if not resident).
    pub fn refs_of(&self, digest: u64) -> u64 {
        self.chunks.get(&digest).map(|e| e.refs).unwrap_or(0)
    }

    /// Resident size in bytes of one chunk, if resident.
    pub fn chunk_bytes(&self, digest: u64) -> Option<usize> {
        self.chunks.get(&digest).map(|e| e.data.resident_bytes())
    }

    /// Whether no chunk is resident (all references released).
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Corruption-injection test support: flips one bit of the `nth`
    /// resident *byte* chunk (in digest order), leaving its key unchanged so
    /// [`ChunkStore::verify_chunk`] fails deterministically. Returns the
    /// digest of the damaged chunk, or `None` if fewer than `nth + 1` byte
    /// chunks are resident.
    pub fn corrupt_byte_chunk_for_test(&mut self, nth: usize, byte: usize, bit: u8) -> Option<u64> {
        let digest = *self
            .chunks
            .iter()
            .filter(|(_, e)| matches!(e.data, ChunkData::Bytes(_)))
            .nth(nth)
            .map(|(d, _)| d)?;
        if let ChunkData::Bytes(b) = &mut self.chunks.get_mut(&digest).expect("just found").data {
            let i = byte % b.len();
            b[i] ^= 1 << (bit & 7);
        }
        Some(digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Heap;

    #[test]
    fn byte_chunks_dedup_by_content() {
        let mut s = ChunkStore::new();
        let a = s.insert_bytes(&[1u8; 100]);
        let b = s.insert_bytes(&[1u8; 100]);
        let c = s.insert_bytes(&[2u8; 100]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(s.chunk_count(), 2);
        assert_eq!(s.refs_of(a), 2);
        assert_eq!(s.dedup_hits(), 1);
        assert_eq!(s.resident_bytes(), 200);
    }

    #[test]
    fn release_frees_at_zero() {
        let mut s = ChunkStore::new();
        let d = s.insert_bytes(&[7u8; 10]);
        s.incref(d);
        s.release(d);
        assert_eq!(s.refs_of(d), 1);
        s.release(d);
        assert!(s.is_empty());
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn bit_flip_is_detected() {
        let mut s = ChunkStore::new();
        let d = s.insert_bytes(&[0u8; 64]);
        assert!(s.verify_chunk(d).is_ok());
        let hit = s.corrupt_byte_chunk_for_test(0, 3, 2).expect("one chunk");
        assert_eq!(hit, d);
        assert!(matches!(
            s.verify_chunk(d),
            Err(IntegrityError::ChunkDigest { .. })
        ));
        assert!(s.verify_all().is_err());
    }

    #[test]
    fn opaque_chunks_dedup_same_type_same_value_only() {
        let mut h = Heap::new("t");
        let a = h.alloc_cell("a", 5u64);
        let b = h.alloc_cell("b", 5u64);
        let c = h.alloc_cell("c", 5u32); // same Debug text, different type
        let _ = (a, b, c);
        let mut s = ChunkStore::new();
        let img = h.clone_image(&mut s, None);
        // a and b share one opaque chunk; c gets its own.
        assert_eq!(s.chunk_count(), 2);
        img.release(&mut s);
        assert!(s.is_empty());
    }
}
