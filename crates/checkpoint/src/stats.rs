//! Heap statistics used by the memory- and performance-overhead experiments.

/// Counters accumulated by a [`crate::Heap`].
///
/// `writes` counts every logical store, whether or not it was logged;
/// `undo_appends` counts only logged stores that actually appended a record.
/// `writes - undo_appends - coalesced_writes` is the out-of-window work the
/// paper's function-cloning optimization avoids, and `coalesced_writes` is
/// the in-window work the typed journal's write coalescing avoids on top.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Logical store operations performed through persistent containers.
    pub writes: u64,
    /// Stores that appended an undo record (logging enabled, not coalesced).
    pub undo_appends: u64,
    /// Logged stores elided because an earlier record in the same window
    /// already covers their location (rollback-equivalent).
    pub coalesced_writes: u64,
    /// Bytes currently held by the undo log.
    pub undo_bytes_current: usize,
    /// High-water mark of `undo_bytes_current` (Table VI's "+undo log"),
    /// updated on every append.
    pub undo_bytes_peak: usize,
    /// Cumulative payload bytes ever appended (never decremented by
    /// rollback or discard); per-window deltas of this counter feed the
    /// undo-bytes-per-window histogram.
    pub undo_bytes_appended: u64,
    /// The largest undo log any single window accumulated, sampled at
    /// window close rather than at report time. Under window-gated
    /// instrumentation this equals `undo_bytes_peak`; under always-on
    /// logging it excludes log growth that happened outside any window.
    pub undo_bytes_window_peak: usize,
    /// Cumulative payload bytes appended into already-warm arena capacity
    /// (i.e. without growing the allocation). Steady-state windows should see
    /// this track total payload bytes — the "zero allocator calls" claim.
    pub arena_reuse_bytes: u64,
    /// Number of rollbacks performed.
    pub rollbacks: u64,
    /// `set_logging(false)` requests that were overridden (and therefore did
    /// not take effect) because force-logging was active.
    pub gating_overrides: u64,
}

#[cfg(test)]
mod tests {
    use super::HeapStats;

    #[test]
    fn default_is_zeroed() {
        let s = HeapStats::default();
        assert_eq!(s.writes, 0);
        assert_eq!(s.undo_appends, 0);
        assert_eq!(s.coalesced_writes, 0);
        assert_eq!(s.undo_bytes_current, 0);
        assert_eq!(s.undo_bytes_peak, 0);
        assert_eq!(s.undo_bytes_appended, 0);
        assert_eq!(s.undo_bytes_window_peak, 0);
        assert_eq!(s.arena_reuse_bytes, 0);
        assert_eq!(s.rollbacks, 0);
        assert_eq!(s.gating_overrides, 0);
    }
}
