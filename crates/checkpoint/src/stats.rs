//! Heap statistics used by the memory- and performance-overhead experiments.

/// Counters accumulated by a [`crate::Heap`].
///
/// `writes` counts every logical store, whether or not it was logged;
/// `undo_appends` counts only logged stores. The difference is exactly the
/// work the paper's out-of-window optimization avoids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Logical store operations performed through persistent containers.
    pub writes: u64,
    /// Stores that appended an undo record (logging enabled).
    pub undo_appends: u64,
    /// Bytes currently held by the undo log.
    pub undo_bytes_current: usize,
    /// High-water mark of `undo_bytes_current` (Table VI's "+undo log").
    pub undo_bytes_peak: usize,
    /// Number of rollbacks performed.
    pub rollbacks: u64,
}

#[cfg(test)]
mod tests {
    use super::HeapStats;

    #[test]
    fn default_is_zeroed() {
        let s = HeapStats::default();
        assert_eq!(s.writes, 0);
        assert_eq!(s.undo_appends, 0);
        assert_eq!(s.undo_bytes_current, 0);
        assert_eq!(s.undo_bytes_peak, 0);
        assert_eq!(s.rollbacks, 0);
    }
}
