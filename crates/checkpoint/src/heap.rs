//! The checkpointed heap: object storage plus the undo journal.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::mem::size_of;
use std::sync::atomic::{AtomicU32, Ordering};

use osiris_trace::{TraceEvent, TraceHandle};

use crate::cas::FnvWriter;
use crate::journal::{fnv1a_bytes, fnv1a_u64, IntegrityError, Journal, FNV_OFFSET};
use crate::map::MapKey;
use crate::stats::HeapStats;

/// Marker trait for values that may live in a [`Heap`].
///
/// Blanket-implemented for every `Clone + Debug + Send + 'static` type, so in
/// practice any ordinary data type qualifies. The byte accounting used for
/// memory-overhead experiments approximates a value's size with
/// `size_of::<T>()`; containers refine this where they can (e.g. [`crate::PBuf`]
/// counts its actual payload).
pub trait HeapValue: Clone + fmt::Debug + Send + Sync + 'static {}
impl<T: Clone + fmt::Debug + Send + Sync + 'static> HeapValue for T {}

/// Identifier of an object within a heap, paired with the owning heap's id.
///
/// Typed handles ([`crate::PCell`] etc.) wrap an `ObjId`. Handles are plain
/// data: they survive component restart (the Recovery Server re-binds the
/// pristine server struct, whose handles were allocated deterministically at
/// init time, to the rolled-back heap).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjId {
    pub(crate) index: u32,
    pub(crate) heap_id: u32,
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjId({}@h{})", self.index, self.heap_id)
    }
}

/// A checkpoint position in the undo log.
///
/// Obtained from [`Heap::mark`] at the top of a request-processing loop;
/// passed to [`Heap::rollback_to`] to restore the state that existed when the
/// mark was taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mark {
    pub(crate) log_len: usize,
    pub(crate) heap_id: u32,
}

/// Internal object slot: a named, type-erased, clonable value.
pub(crate) struct Obj {
    pub(crate) name: &'static str,
    pub(crate) data: Box<dyn AnyObj>,
    /// Dirty epoch: the heap-global write counter value of the last mutation
    /// (or allocation) of this object. Snapshot manifests record it, so a
    /// later [`Heap::clone_image`] re-chunks — and [`Heap::restore_image`]
    /// rewrites — only objects whose epoch diverges from the manifest.
    pub(crate) epoch: u64,
}

/// Object trait: `Any` for downcasting plus deep-clone support so that heap
/// images (server clones) can be taken.
pub(crate) trait AnyObj: Any + Send + Sync + fmt::Debug {
    fn clone_obj(&self) -> Box<dyn AnyObj>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Approximate resident size in bytes, for memory-overhead accounting.
    fn approx_bytes(&self) -> usize;
    /// FNV-1a digest over the payload's type identity and content
    /// (allocation-free). Keys opaque chunks in the content-addressed store
    /// and feeds [`Heap::state_digest`].
    fn content_digest(&self) -> u64;
    /// The byte-backed holder, if this object's payload is `Vec<u8>`
    /// (every [`crate::PBuf`] and `PVec<u8>`). Byte-backed objects are the
    /// ones split into fixed-size chunks at snapshot time.
    fn byte_holder(&self) -> Option<&Holder<Vec<u8>>>;
    /// Mutable access to the byte-backed holder, for in-place chunk
    /// write-back during restore (reuses existing capacity).
    fn byte_holder_mut(&mut self) -> Option<&mut Holder<Vec<u8>>>;
}

/// Wrapper implementing [`AnyObj`] for concrete container payloads.
pub(crate) struct Holder<T: HeapValue> {
    pub(crate) value: T,
    /// Containers with dynamic payloads (vec/map/buf) keep this updated;
    /// plain cells leave it at `size_of::<T>()`.
    pub(crate) extra_bytes: usize,
}

impl<T: HeapValue> fmt::Debug for Holder<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.value, f)
    }
}

impl<T: HeapValue> AnyObj for Holder<T> {
    fn clone_obj(&self) -> Box<dyn AnyObj> {
        Box::new(Holder {
            value: self.value.clone(),
            extra_bytes: self.extra_bytes,
        })
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn approx_bytes(&self) -> usize {
        size_of::<T>() + self.extra_bytes
    }
    fn content_digest(&self) -> u64 {
        let mut w = FnvWriter(FNV_OFFSET);
        let _ = w.write_str(std::any::type_name::<T>());
        w.0 = fnv1a_u64(w.0, size_of::<T>() as u64);
        match self.byte_holder() {
            // Byte payloads hash directly; everything else streams its
            // `Debug` rendering through the FNV sink (no allocation either
            // way). Folding the type name in first keeps two types with the
            // same `Debug` text from colliding.
            Some(h) => fnv1a_bytes(w.0, &h.value),
            None => {
                let _ = write!(w, "{:?}", self.value);
                w.0
            }
        }
    }
    fn byte_holder(&self) -> Option<&Holder<Vec<u8>>> {
        (self as &dyn Any).downcast_ref::<Holder<Vec<u8>>>()
    }
    fn byte_holder_mut(&mut self) -> Option<&mut Holder<Vec<u8>>> {
        (self as &mut dyn Any).downcast_mut::<Holder<Vec<u8>>>()
    }
}

/// A boxed restore closure, as stored by [`UndoMode::BoxedReference`].
pub(crate) type BoxedUndoFn = Box<dyn FnOnce(&mut [Obj]) + Send>;

/// One boxed undo record, used only in [`UndoMode::BoxedReference`]: a
/// closure that restores the previous value of a single mutation, plus the
/// number of bytes the record accounts for.
pub(crate) struct UndoOp {
    pub(crate) bytes: usize,
    /// Index of the object the record mutates, so rollback can dirty its
    /// epoch (a rolled-back object no longer matches any snapshot taken
    /// between the mutation and the rollback).
    pub(crate) obj: u32,
    pub(crate) undo: BoxedUndoFn,
}

/// How the heap stores undo records.
///
/// The typed journal is the production path; the boxed log is the historical
/// implementation, kept as the *reference* both for the `bench_undo`
/// before/after comparison and for the differential rollback-equivalence
/// tests (the boxed log never coalesces, so it is the ground truth).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UndoMode {
    /// Typed, allocation-free journal with an old-value arena (default).
    #[default]
    Typed,
    /// One boxed `dyn FnOnce` closure per logged store (the pre-journal
    /// implementation). Never coalesces.
    BoxedReference,
}

/// Per-record fixed accounting overhead: the address word, as in the paper's
/// *(address, old value)* undo-log entries.
const WORD: usize = size_of::<usize>();

static NEXT_HEAP_ID: AtomicU32 = AtomicU32::new(1);

/// A component-local checkpointed heap.
///
/// All recoverable state of an OSIRIS server lives in exactly one `Heap`.
/// Mutations performed through the persistent containers append undo records
/// while logging is enabled; [`Heap::rollback_to`] restores a prior [`Mark`].
///
/// A heap is single-owner and accessed only from the kernel's event loop —
/// matching the paper's model where each server is a single (cooperatively
/// threaded) process.
pub struct Heap {
    pub(crate) objs: Vec<Obj>,
    /// Heap-global monotonic write counter backing per-object dirty epochs.
    /// Bumped by every mutation entry point (and rollback write-back); never
    /// reset, so an epoch recorded in any snapshot is always comparable.
    write_epoch: u64,
    /// Fork support: `write_epoch` as of the last [`Heap::adopt_image`] (or
    /// `None` before the first adoption). Every live epoch at or below this
    /// floor is *parent-line* — it identifies the same write (and therefore
    /// the same content) as the equal epoch in the donor heap's history —
    /// while epochs above it were minted by this heap after the adoption and
    /// must never be trusted to match a donor manifest numerically.
    pub(crate) adopt_floor: Option<u64>,
    journal: Journal,
    boxed_log: Vec<UndoOp>,
    mode: UndoMode,
    coalescing: bool,
    logging: bool,
    force_logging: bool,
    id: u32,
    name: &'static str,
    stats: HeapStats,
    tracer: Option<TraceHandle>,
    trace_comp: u8,
    /// Cached snapshot of `tracer.is_enabled()`, refreshed at the logging
    /// gate (window open/close) so the per-write emit check is a plain
    /// in-struct bool load instead of an `Arc` deref plus atomic load.
    trace_live: bool,
}

impl fmt::Debug for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Heap")
            .field("name", &self.name)
            .field("objects", &self.objs.len())
            .field("log_len", &self.log_len())
            .field("logging", &self.logging)
            .field("mode", &self.mode)
            .finish()
    }
}

impl Heap {
    /// Creates an empty heap for the component called `name`.
    pub fn new(name: &'static str) -> Self {
        Heap {
            objs: Vec::new(),
            write_epoch: 0,
            adopt_floor: None,
            journal: Journal::new(),
            boxed_log: Vec::new(),
            mode: UndoMode::Typed,
            coalescing: true,
            logging: false,
            force_logging: false,
            id: NEXT_HEAP_ID.fetch_add(1, Ordering::Relaxed),
            name,
            stats: HeapStats::default(),
            tracer: None,
            trace_comp: osiris_trace::KERNEL_COMP,
            trace_live: false,
        }
    }

    /// Attaches a flight-recorder handle; journal activity (appends,
    /// coalesced writes, marks, rollbacks, discards) is emitted as trace
    /// events attributed to component `comp`.
    ///
    /// The enabled flag is snapshotted here and at every
    /// [`Heap::set_logging`] call (the recovery-window gate), so with the
    /// tracer disabled — or absent — each emit point costs one branch on a
    /// bool stored in the heap itself. A runtime
    /// [`TraceHandle::set_enabled`] toggle therefore takes effect at the
    /// next window boundary, not mid-window.
    pub fn set_tracer(&mut self, tracer: TraceHandle, comp: u8) {
        self.trace_live = tracer.is_enabled();
        self.tracer = Some(tracer);
        self.trace_comp = comp;
    }

    /// The attached flight-recorder handle, if any.
    pub fn tracer(&self) -> Option<&TraceHandle> {
        self.tracer.as_ref()
    }

    /// Emits `event` to the attached tracer (no-op without one), attributed
    /// to this heap's component. Also used by the recovery-window machinery
    /// in `osiris-core`, which reaches the recorder through the heap.
    #[inline]
    pub fn trace_emit(&self, event: TraceEvent) {
        if !self.trace_live {
            return;
        }
        if let Some(t) = &self.tracer {
            t.emit(self.trace_comp, event);
        }
    }

    /// The component name this heap belongs to.
    pub fn name(&self) -> &'static str {
        self.name
    }

    pub(crate) fn id(&self) -> u32 {
        self.id
    }

    /// Allocates a new object slot holding `value` and returns its id.
    pub(crate) fn alloc_obj<T: HeapValue>(&mut self, name: &'static str, value: T) -> ObjId {
        let index = u32::try_from(self.objs.len()).expect("heap object count overflow");
        self.write_epoch += 1;
        self.objs.push(Obj {
            name,
            data: Box::new(Holder {
                value,
                extra_bytes: 0,
            }),
            epoch: self.write_epoch,
        });
        ObjId {
            index,
            heap_id: self.id,
        }
    }

    /// Marks object `index` dirty: bumps the heap-global write counter and
    /// stamps it as the object's epoch. Called on every mutation entry point
    /// regardless of logging (snapshots must see all writes, not just
    /// in-window ones). Two field updates, no allocation.
    #[inline]
    fn touch(&mut self, index: u32) {
        self.write_epoch += 1;
        self.objs[index as usize].epoch = self.write_epoch;
    }

    /// Dirty epoch of object `index` (manifest comparisons).
    pub(crate) fn epoch_of(&self, index: usize) -> u64 {
        self.objs[index].epoch
    }

    /// Restore support: stamps object `index` with a snapshot-recorded
    /// epoch. Sound because `write_epoch` is monotonic and at least as large
    /// as any epoch ever handed out by this heap.
    pub(crate) fn set_epoch(&mut self, index: usize, epoch: u64) {
        debug_assert!(epoch <= self.write_epoch);
        self.objs[index].epoch = epoch;
    }

    /// Current value of the heap-global write counter. Snapshots record it
    /// so [`Heap::adopt_image`] on a fork can raise its own counter to the
    /// donor's before stamping donor epochs onto live objects.
    pub fn write_epoch(&self) -> u64 {
        self.write_epoch
    }

    /// Raises the write counter to at least `to` (monotonic; never lowers).
    pub(crate) fn raise_write_epoch(&mut self, to: u64) {
        if to > self.write_epoch {
            self.write_epoch = to;
        }
    }

    /// Fork support: journal arena warmth — cumulative reuse-byte counter
    /// and current arena capacity. Captured by snapshots and written back by
    /// [`Heap::restore_journal_warmth`] so a forked heap's subsequent undo
    /// accounting (the `arena_reuse_bytes` statistic mirrored into metrics)
    /// is byte-identical to the donor's.
    pub fn journal_warmth(&self) -> (u64, usize) {
        self.journal.warmth()
    }

    /// Fork support: restores the journal arena's reuse counter and grows
    /// its capacity to at least the donor's (capacity never shrinks — a
    /// fresh-boot fork's arena is never larger than its donor's, so the
    /// capacities match exactly on the differential path).
    pub fn restore_journal_warmth(&mut self, reused: u64, capacity: usize) {
        self.journal.restore_warmth(reused, capacity);
    }

    /// Fork support: overwrites the accumulated statistics wholesale (the
    /// donor heap's counters at snapshot time).
    pub fn set_stats(&mut self, stats: HeapStats) {
        self.stats = stats;
    }

    /// FNV-1a digest over the full heap state: every object's name and
    /// content digest, in slot order. Two heaps-states with equal digests
    /// hold equal values (modulo FNV collisions); used by the differential
    /// tests to prove COW restore is state-equivalent to deep-copy restore.
    pub fn state_digest(&self) -> u64 {
        let mut d = fnv1a_u64(FNV_OFFSET, u64::from(self.id));
        for o in &self.objs {
            d = fnv1a_bytes(d, o.name.as_bytes());
            d = fnv1a_u64(d, o.data.content_digest());
        }
        d
    }

    /// Immutable access to the payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to a different heap or the stored type
    /// does not match — both are programming errors in RCB code.
    pub(crate) fn holder<T: HeapValue>(&self, id: ObjId) -> &Holder<T> {
        assert_eq!(
            id.heap_id, self.id,
            "handle used with foreign heap `{}`",
            self.name
        );
        self.objs[id.index as usize]
            .data
            .as_any()
            .downcast_ref::<Holder<T>>()
            .expect("heap object type mismatch")
    }

    /// Mutable access to the payload of `id`. Callers must have logged the
    /// undo record first. Does **not** touch statistics.
    pub(crate) fn holder_mut<T: HeapValue>(&mut self, id: ObjId) -> &mut Holder<T> {
        assert_eq!(
            id.heap_id, self.id,
            "handle used with foreign heap `{}`",
            self.name
        );
        self.objs[id.index as usize]
            .data
            .as_any_mut()
            .downcast_mut::<Holder<T>>()
            .expect("heap object type mismatch")
    }

    // -- logging entry points, one per container mutation shape -------------
    //
    // Each counts the logical write, then — only if logging is on — consults
    // the coalescing index *before* cloning the old value, so coalesced
    // stores skip both the clone and the append: the fast path of a warm
    // window touches no allocator at all.

    /// Common bookkeeping for a logged append.
    fn account_append(&mut self, bytes: usize) {
        self.stats.undo_appends += 1;
        self.stats.undo_bytes_current += bytes;
        self.stats.undo_bytes_appended += bytes as u64;
        if self.stats.undo_bytes_current > self.stats.undo_bytes_peak {
            self.stats.undo_bytes_peak = self.stats.undo_bytes_current;
        }
        self.stats.arena_reuse_bytes = self.journal.arena_reuse_bytes();
        self.trace_emit(TraceEvent::UndoAppend {
            bytes: bytes as u32,
        });
    }

    /// Common bookkeeping for a coalesced (elided) logged write.
    fn account_coalesced(&mut self) {
        self.stats.coalesced_writes += 1;
        self.trace_emit(TraceEvent::UndoCoalesce);
    }

    fn typed(&self) -> bool {
        self.mode == UndoMode::Typed
    }

    pub(crate) fn log_cell_set<T: HeapValue>(&mut self, id: ObjId) {
        self.stats.writes += 1;
        self.touch(id.index);
        if !self.logging {
            return;
        }
        if self.typed() && self.coalescing && self.journal.cell_covered::<T>(id.index) {
            self.account_coalesced();
            return;
        }
        let old = self.holder::<T>(id).value.clone();
        let bytes = match self.mode {
            UndoMode::Typed => self.journal.push_cell(id.index, old, self.coalescing),
            UndoMode::BoxedReference => {
                let index = id.index;
                self.boxed_log.push(UndoOp {
                    bytes: WORD + size_of::<T>(),
                    obj: index,
                    undo: Box::new(move |objs| {
                        boxed_holder_mut::<T>(objs, index).value = old;
                    }),
                });
                WORD + size_of::<T>()
            }
        };
        self.account_append(bytes);
    }

    pub(crate) fn log_vec_set<T: HeapValue>(&mut self, id: ObjId, index: usize) {
        self.stats.writes += 1;
        self.touch(id.index);
        if !self.logging {
            return;
        }
        if self.typed() && self.coalescing && self.journal.vec_covered::<T>(id.index, index) {
            self.account_coalesced();
            return;
        }
        let old = self.holder::<Vec<T>>(id).value[index].clone();
        let bytes = match self.mode {
            UndoMode::Typed => self
                .journal
                .push_vec_set(id.index, index, old, self.coalescing),
            UndoMode::BoxedReference => {
                let obj = id.index;
                self.boxed_log.push(UndoOp {
                    bytes: WORD + size_of::<T>(),
                    obj,
                    undo: Box::new(move |objs| {
                        boxed_holder_mut::<Vec<T>>(objs, obj).value[index] = old;
                    }),
                });
                WORD + size_of::<T>()
            }
        };
        self.account_append(bytes);
    }

    pub(crate) fn log_vec_push<T: HeapValue>(&mut self, id: ObjId) {
        self.stats.writes += 1;
        self.touch(id.index);
        if !self.logging {
            return;
        }
        let bytes = match self.mode {
            UndoMode::Typed => self.journal.push_vec_push::<T>(id.index),
            UndoMode::BoxedReference => {
                let obj = id.index;
                self.boxed_log.push(UndoOp {
                    bytes: WORD + size_of::<T>(),
                    obj,
                    undo: Box::new(move |objs| {
                        let h = boxed_holder_mut::<Vec<T>>(objs, obj);
                        h.value.pop();
                        h.extra_bytes = h.value.len() * size_of::<T>();
                    }),
                });
                WORD + size_of::<T>()
            }
        };
        self.account_append(bytes);
    }

    pub(crate) fn log_vec_pop<T: HeapValue>(&mut self, id: ObjId, last: &T) {
        self.stats.writes += 1;
        self.touch(id.index);
        if !self.logging {
            return;
        }
        let old = last.clone();
        let bytes = match self.mode {
            UndoMode::Typed => self.journal.push_vec_pop(id.index, old),
            UndoMode::BoxedReference => {
                let obj = id.index;
                self.boxed_log.push(UndoOp {
                    bytes: WORD + size_of::<T>(),
                    obj,
                    undo: Box::new(move |objs| {
                        let h = boxed_holder_mut::<Vec<T>>(objs, obj);
                        h.value.push(old);
                        h.extra_bytes = h.value.len() * size_of::<T>();
                    }),
                });
                WORD + size_of::<T>()
            }
        };
        self.account_append(bytes);
    }

    pub(crate) fn log_vec_truncate<T: HeapValue>(&mut self, id: ObjId, new_len: usize) {
        self.stats.writes += 1;
        self.touch(id.index);
        if !self.logging {
            return;
        }
        let bytes = match self.mode {
            UndoMode::Typed => {
                // Borrow the tail straight out of the object and clone each
                // element into the arena — no intermediate `Vec` allocation.
                let holder = self.objs[id.index as usize]
                    .data
                    .as_any()
                    .downcast_ref::<Holder<Vec<T>>>()
                    .expect("heap object type mismatch");
                self.journal
                    .push_vec_truncate(id.index, &holder.value[new_len..])
            }
            UndoMode::BoxedReference => {
                let tail: Vec<T> = self.holder::<Vec<T>>(id).value[new_len..].to_vec();
                let bytes = WORD + tail.len() * size_of::<T>();
                let obj = id.index;
                self.boxed_log.push(UndoOp {
                    bytes,
                    obj,
                    undo: Box::new(move |objs| {
                        let h = boxed_holder_mut::<Vec<T>>(objs, obj);
                        h.value.extend(tail);
                        h.extra_bytes = h.value.len() * size_of::<T>();
                    }),
                });
                bytes
            }
        };
        self.account_append(bytes);
    }

    pub(crate) fn log_map_insert<K: MapKey, V: HeapValue>(
        &mut self,
        id: ObjId,
        key: &K,
        old: Option<&V>,
    ) {
        self.stats.writes += 1;
        self.touch(id.index);
        if !self.logging {
            return;
        }
        let bytes = match self.mode {
            UndoMode::Typed => self
                .journal
                .push_map_insert(id.index, key.clone(), old.cloned()),
            UndoMode::BoxedReference => {
                let undo_key = key.clone();
                let undo_old = old.cloned();
                let obj = id.index;
                self.boxed_log.push(UndoOp {
                    bytes: WORD + size_of::<K>() + size_of::<V>(),
                    obj,
                    undo: Box::new(move |objs| {
                        let h = boxed_holder_mut::<BTreeMap<K, V>>(objs, obj);
                        match undo_old {
                            Some(v) => h.value.insert(undo_key, v),
                            None => h.value.remove(&undo_key),
                        };
                        h.extra_bytes = h.value.len() * (size_of::<K>() + size_of::<V>());
                    }),
                });
                WORD + size_of::<K>() + size_of::<V>()
            }
        };
        self.account_append(bytes);
    }

    pub(crate) fn log_map_remove<K: MapKey, V: HeapValue>(&mut self, id: ObjId, key: &K, old: &V) {
        self.stats.writes += 1;
        self.touch(id.index);
        if !self.logging {
            return;
        }
        let bytes = match self.mode {
            UndoMode::Typed => self
                .journal
                .push_map_remove(id.index, key.clone(), old.clone()),
            UndoMode::BoxedReference => {
                let undo_key = key.clone();
                let undo_val = old.clone();
                let obj = id.index;
                self.boxed_log.push(UndoOp {
                    bytes: WORD + size_of::<K>() + size_of::<V>(),
                    obj,
                    undo: Box::new(move |objs| {
                        let h = boxed_holder_mut::<BTreeMap<K, V>>(objs, obj);
                        h.value.insert(undo_key, undo_val);
                        h.extra_bytes = h.value.len() * (size_of::<K>() + size_of::<V>());
                    }),
                });
                WORD + size_of::<K>() + size_of::<V>()
            }
        };
        self.account_append(bytes);
    }

    pub(crate) fn log_buf_write(&mut self, id: ObjId, offset: usize, write_len: usize) {
        self.stats.writes += 1;
        self.touch(id.index);
        if !self.logging {
            return;
        }
        if self.typed() && self.coalescing {
            // A write is only coalescible if it is length-neutral: a write
            // past the current end grows the buffer, and that growth is not
            // captured by the covering record (whose undo truncates to *its*
            // old length, not to the length right before this write).
            let cur_len = self.holder::<Vec<u8>>(id).value.len();
            if offset + write_len <= cur_len
                && self.journal.buf_covered(id.index, offset, write_len)
            {
                self.account_coalesced();
                return;
            }
        }
        let bytes = match self.mode {
            UndoMode::Typed => {
                // Push the overwritten range straight from the object into
                // the arena — no intermediate `Vec` allocation.
                let holder = self.objs[id.index as usize]
                    .data
                    .as_any()
                    .downcast_ref::<Holder<Vec<u8>>>()
                    .expect("heap object type mismatch");
                let old_len = holder.value.len();
                let ow_end = (offset + write_len).min(old_len);
                let overwritten: &[u8] = if offset < old_len {
                    &holder.value[offset..ow_end]
                } else {
                    &[]
                };
                self.journal.push_buf_write(
                    id.index,
                    offset,
                    overwritten,
                    old_len,
                    write_len,
                    self.coalescing,
                )
            }
            UndoMode::BoxedReference => {
                let old_len = self.holder::<Vec<u8>>(id).value.len();
                let ow_end = (offset + write_len).min(old_len);
                let overwritten: Vec<u8> = if offset < old_len {
                    self.holder::<Vec<u8>>(id).value[offset..ow_end].to_vec()
                } else {
                    Vec::new()
                };
                let obj = id.index;
                self.boxed_log.push(UndoOp {
                    bytes: WORD + write_len,
                    obj,
                    undo: Box::new(move |objs| {
                        let h = boxed_holder_mut::<Vec<u8>>(objs, obj);
                        let restore_end = offset + overwritten.len();
                        if restore_end <= h.value.len() {
                            h.value[offset..restore_end].copy_from_slice(&overwritten);
                        }
                        h.value.truncate(old_len);
                        h.extra_bytes = h.value.len();
                    }),
                });
                WORD + write_len
            }
        };
        self.account_append(bytes);
    }

    pub(crate) fn log_buf_truncate(&mut self, id: ObjId, new_len: usize) {
        self.stats.writes += 1;
        self.touch(id.index);
        if !self.logging {
            return;
        }
        let bytes = match self.mode {
            UndoMode::Typed => {
                let holder = self.objs[id.index as usize]
                    .data
                    .as_any()
                    .downcast_ref::<Holder<Vec<u8>>>()
                    .expect("heap object type mismatch");
                self.journal
                    .push_buf_truncate(id.index, &holder.value[new_len..])
            }
            UndoMode::BoxedReference => {
                let tail: Vec<u8> = self.holder::<Vec<u8>>(id).value[new_len..].to_vec();
                let bytes = WORD + tail.len();
                let obj = id.index;
                self.boxed_log.push(UndoOp {
                    bytes,
                    obj,
                    undo: Box::new(move |objs| {
                        let h = boxed_holder_mut::<Vec<u8>>(objs, obj);
                        h.value.extend_from_slice(&tail);
                        h.extra_bytes = h.value.len();
                    }),
                });
                bytes
            }
        };
        self.account_append(bytes);
    }

    // -- mode & gating -------------------------------------------------------

    /// The undo-record representation currently in use.
    pub fn undo_mode(&self) -> UndoMode {
        self.mode
    }

    /// Switches the undo-record representation.
    ///
    /// # Panics
    ///
    /// Panics if the undo log is non-empty: records of the two
    /// representations cannot be interleaved.
    pub fn set_undo_mode(&mut self, mode: UndoMode) {
        assert_eq!(
            self.log_len(),
            0,
            "undo mode can only change while the log is empty"
        );
        self.mode = mode;
    }

    /// Whether per-window write coalescing is enabled (typed mode only).
    pub fn coalescing(&self) -> bool {
        self.coalescing
    }

    /// Enables or disables per-window write coalescing.
    pub fn set_coalescing(&mut self, on: bool) {
        if on && !self.coalescing {
            // Entries recorded before the toggle must not suppress appends.
            self.journal.invalidate_coalescing();
        }
        self.coalescing = on;
    }

    /// Whether write logging is currently enabled.
    pub fn logging(&self) -> bool {
        self.logging
    }

    /// Requests write logging on or off; returns the *effective* state.
    ///
    /// While [`Heap::set_force_logging`] is in effect a request to disable
    /// logging is overridden: logging stays on, the override is counted in
    /// [`HeapStats::gating_overrides`], and the return value reports `true`
    /// so callers can see their request did not take effect (previously the
    /// override was silent).
    ///
    /// The recovery-window machinery turns logging on when a window opens and
    /// off when it closes; this is the analog of the paper's function-cloning
    /// optimization that removes instrumentation overhead outside windows.
    pub fn set_logging(&mut self, on: bool) -> bool {
        self.trace_live = self.tracer.as_ref().is_some_and(TraceHandle::is_enabled);
        let effective = on || self.force_logging;
        if !on && self.force_logging {
            self.stats.gating_overrides += 1;
        }
        if effective && !self.logging {
            // A fresh logging span: locations covered in a previous span must
            // not be coalesced away in this one.
            self.journal.invalidate_coalescing();
        }
        self.logging = effective;
        effective
    }

    /// Forces write logging to stay enabled even when a recovery window
    /// closes. This models the paper's *unoptimized* configuration (Table V,
    /// "Without opt."): the store instrumentation runs unconditionally, so
    /// the undo log is maintained outside recovery windows too.
    pub fn set_force_logging(&mut self, force: bool) {
        self.force_logging = force;
        if force && !self.logging {
            self.journal.invalidate_coalescing();
            self.logging = true;
        }
    }

    /// Returns a checkpoint mark at the current undo-log position.
    pub fn mark(&self) -> Mark {
        self.journal.note_mark();
        self.trace_emit(TraceEvent::CheckpointMark {
            log_len: self.log_len() as u32,
        });
        Mark {
            log_len: self.log_len(),
            heap_id: self.id,
        }
    }

    /// Number of undo records currently held.
    pub fn log_len(&self) -> usize {
        // Exactly one of the two logs is ever non-empty (mode switches
        // require an empty log), so the sum is the active log's length.
        self.journal.len() + self.boxed_log.len()
    }

    /// Bytes currently accounted to the undo log.
    pub fn log_bytes(&self) -> usize {
        self.stats.undo_bytes_current
    }

    /// Bytes currently held by the typed journal's payload arena.
    pub fn arena_len(&self) -> usize {
        self.journal.arena_len()
    }

    /// The typed journal's running integrity digest (its FNV-1a offset basis
    /// when the log is empty). Maintained incrementally at append/pop time.
    pub fn journal_digest(&self) -> u64 {
        self.journal.digest()
    }

    /// Verifies the typed undo journal's integrity chain by recomputing the
    /// digest over every record and payload byte from scratch.
    ///
    /// Detects any single bit flip in a record header or payload and any
    /// torn tail. The recovery path calls this before trusting a rollback;
    /// a corrupted journal degrades to a fresh restart instead of silently
    /// replaying damaged state. The boxed reference log carries no digest,
    /// so in [`UndoMode::BoxedReference`] only the (empty) typed journal is
    /// checked.
    pub fn verify_journal(&self) -> Result<(), IntegrityError> {
        self.journal.verify()
    }

    /// Corruption-injection test support: flips one bit of an undo-journal
    /// arena payload byte. Flip the same bit again to restore the payload
    /// before the log is replayed or discarded.
    pub fn corrupt_journal_arena_bit(&mut self, byte: usize, bit: u8) {
        self.journal.corrupt_arena_bit(byte, bit);
    }

    /// Corruption-injection test support: flips one bit of undo record
    /// `index`'s `aux` scalar. Reversible.
    pub fn corrupt_journal_record_bit(&mut self, index: usize, bit: u32) {
        self.journal.corrupt_record_bit(index, bit);
    }

    /// Corruption-injection test support: tears the newest `n` records off
    /// the journal without digest bookkeeping, simulating a torn write. The
    /// torn payloads are leaked; use only in tests.
    pub fn tear_journal_tail(&mut self, n: usize) {
        self.journal.tear_tail(n);
    }

    /// Rolls the heap back to `mark`, undoing every logged mutation made
    /// since, in reverse order. Clears the replayed portion of the log.
    ///
    /// # Panics
    ///
    /// Panics if `mark` belongs to another heap or lies beyond the current
    /// log (e.g. the log was truncated after the mark was taken).
    pub fn rollback_to(&mut self, mark: Mark) {
        assert_eq!(
            mark.heap_id, self.id,
            "mark used with foreign heap `{}`",
            self.name
        );
        assert!(
            mark.log_len <= self.log_len(),
            "mark beyond undo log (log was truncated?): {} > {}",
            mark.log_len,
            self.log_len()
        );
        // The log is about to be consumed: sample its size *now* so the
        // per-window peak is taken at window close, not at report time.
        self.sample_window_close();
        let records = (self.log_len() - mark.log_len) as u32;
        let bytes_before = self.stats.undo_bytes_current;
        while self.log_len() > mark.log_len {
            let (bytes, obj) = match self.mode {
                UndoMode::Typed => self.journal.pop_and_apply(&mut self.objs),
                UndoMode::BoxedReference => {
                    let op = self.boxed_log.pop().expect("log length checked above");
                    (op.undo)(&mut self.objs);
                    (op.bytes, op.obj)
                }
            };
            // A rollback write-back is a mutation like any other: the
            // restored object must look dirty to snapshots taken between the
            // original write and this rollback, or a COW restore would skip
            // it as clean and resurrect the rolled-back value.
            self.touch(obj);
            self.stats.undo_bytes_current = self.stats.undo_bytes_current.saturating_sub(bytes);
        }
        self.stats.rollbacks += 1;
        // Surviving index entries may reference popped positions; forget them.
        self.journal.invalidate_coalescing();
        if records > 0 {
            self.trace_emit(TraceEvent::Rollback {
                records,
                bytes: bytes_before.saturating_sub(self.stats.undo_bytes_current) as u32,
            });
        }
    }

    /// Records the current undo-log size as a window-close sample: the
    /// high-water mark of *per-window* log size (`undo_bytes_window_peak`).
    /// Every path that retires a log — commit discard, rollback, image
    /// restore — passes through here, so Table VI's peak is sampled when
    /// windows close rather than reconstructed at report time.
    fn sample_window_close(&mut self) {
        let bytes = self.stats.undo_bytes_current;
        if self.log_len() == 0 {
            return;
        }
        if bytes > self.stats.undo_bytes_window_peak {
            self.stats.undo_bytes_window_peak = bytes;
        }
    }

    /// Discards the entire undo log without applying it.
    ///
    /// Called when a recovery window closes: past that point the checkpoint
    /// can never be restored, so the log is dead weight. Capacity (records,
    /// arena, index) is retained so the next window logs allocation-free.
    pub fn discard_log(&mut self) {
        self.sample_window_close();
        let records = self.log_len() as u32;
        if records > 0 {
            self.trace_emit(TraceEvent::Discard {
                records,
                bytes: self.stats.undo_bytes_current as u32,
            });
        }
        self.journal.discard();
        self.boxed_log.clear();
        self.stats.undo_bytes_current = 0;
    }

    /// Approximate resident size of all objects, in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.objs.iter().map(|o| o.data.approx_bytes()).sum()
    }

    /// Number of allocated objects.
    pub fn object_count(&self) -> usize {
        self.objs.len()
    }

    /// Statistics accumulated since construction (or the last reset).
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// Resets accumulated statistics (not the state or the log).
    pub fn reset_stats(&mut self) {
        self.stats = HeapStats::default();
        self.journal.reset_reuse();
    }

    /// Debug helper: names of all allocated objects, in allocation order.
    pub fn object_names(&self) -> Vec<&'static str> {
        self.objs.iter().map(|o| o.name).collect()
    }
}

/// Downcast helper for the boxed undo closures, which capture only the
/// object index (the heap is passed in at replay time).
fn boxed_holder_mut<T: HeapValue>(objs: &mut [Obj], index: u32) -> &mut Holder<T> {
    objs[index as usize]
        .data
        .as_any_mut()
        .downcast_mut::<Holder<T>>()
        .expect("undo type mismatch")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_rollback_roundtrip() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        h.set_logging(true);
        let m = h.mark();
        c.set(&mut h, 2);
        c.set(&mut h, 3);
        h.rollback_to(m);
        assert_eq!(c.get(&h), 1);
        assert_eq!(h.log_len(), 0);
    }

    #[test]
    fn logging_disabled_skips_undo() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        h.set_logging(false);
        c.set(&mut h, 9);
        assert_eq!(h.log_len(), 0);
        assert_eq!(h.stats().writes, 1);
        assert_eq!(h.stats().undo_appends, 0);
    }

    #[test]
    fn discard_log_prevents_rollback_and_clears_bytes() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        h.set_logging(true);
        c.set(&mut h, 2);
        assert!(h.log_bytes() > 0);
        h.discard_log();
        assert_eq!(h.log_bytes(), 0);
        assert_eq!(c.get(&h), 2);
    }

    #[test]
    fn nested_marks_roll_back_in_order() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 0u32);
        h.set_logging(true);
        let m0 = h.mark();
        c.set(&mut h, 1);
        let m1 = h.mark();
        c.set(&mut h, 2);
        h.rollback_to(m1);
        assert_eq!(c.get(&h), 1);
        h.rollback_to(m0);
        assert_eq!(c.get(&h), 0);
    }

    #[test]
    #[should_panic(expected = "foreign heap")]
    fn foreign_handle_is_rejected() {
        let mut a = Heap::new("a");
        let mut b = Heap::new("b");
        let c = a.alloc_cell("x", 1u32);
        let _ = c.get(&b);
        let _ = &mut b;
    }

    #[test]
    #[should_panic(expected = "beyond undo log")]
    fn stale_mark_is_rejected() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        h.set_logging(true);
        c.set(&mut h, 2);
        let m = h.mark();
        h.discard_log();
        h.rollback_to(m);
    }

    #[test]
    fn peak_undo_bytes_tracks_high_water_mark() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 0u64);
        h.set_logging(true);
        let m = h.mark();
        for i in 0..10 {
            c.set(&mut h, i);
        }
        let peak = h.stats().undo_bytes_peak;
        assert!(peak > 0);
        h.rollback_to(m);
        assert_eq!(h.stats().undo_bytes_peak, peak);
        assert_eq!(h.log_bytes(), 0);
    }

    #[test]
    fn repeated_cell_stores_coalesce_to_one_record() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 0u64);
        h.set_logging(true);
        let m = h.mark();
        for i in 1..=100u64 {
            c.set(&mut h, i);
        }
        assert_eq!(h.log_len(), 1, "only the first old value is kept");
        assert_eq!(h.stats().undo_appends, 1);
        assert_eq!(h.stats().coalesced_writes, 99);
        assert_eq!(h.stats().writes, 100);
        h.rollback_to(m);
        assert_eq!(c.get(&h), 0, "rollback still restores the mark-time value");
    }

    #[test]
    fn coalescing_respects_nested_marks() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 0u64);
        h.set_logging(true);
        let m0 = h.mark();
        c.set(&mut h, 1);
        // A new mark is a new coalescing barrier: the store below must append
        // even though the location is covered before the mark.
        let m1 = h.mark();
        c.set(&mut h, 2);
        c.set(&mut h, 3);
        assert_eq!(h.log_len(), 2);
        h.rollback_to(m1);
        assert_eq!(c.get(&h), 1);
        h.rollback_to(m0);
        assert_eq!(c.get(&h), 0);
    }

    #[test]
    fn coalescing_can_be_disabled() {
        let mut h = Heap::new("t");
        h.set_coalescing(false);
        let c = h.alloc_cell("x", 0u64);
        h.set_logging(true);
        let m = h.mark();
        c.set(&mut h, 1);
        c.set(&mut h, 2);
        assert_eq!(h.log_len(), 2);
        assert_eq!(h.stats().coalesced_writes, 0);
        h.rollback_to(m);
        assert_eq!(c.get(&h), 0);
    }

    #[test]
    fn boxed_reference_mode_matches_typed_semantics() {
        let mut h = Heap::new("t");
        h.set_undo_mode(UndoMode::BoxedReference);
        let c = h.alloc_cell("x", String::from("a"));
        let v = h.alloc_vec::<u32>("v");
        h.set_logging(true);
        let m = h.mark();
        c.set(&mut h, "b".into());
        c.set(&mut h, "c".into());
        v.push(&mut h, 7);
        assert_eq!(h.log_len(), 3, "reference mode never coalesces");
        assert_eq!(h.stats().coalesced_writes, 0);
        h.rollback_to(m);
        assert_eq!(c.get(&h), "a");
        assert!(v.is_empty(&h));
    }

    #[test]
    #[should_panic(expected = "log is empty")]
    fn undo_mode_switch_requires_empty_log() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        h.set_logging(true);
        c.set(&mut h, 2);
        h.set_undo_mode(UndoMode::BoxedReference);
    }

    #[test]
    fn set_logging_reports_force_override() {
        let mut h = Heap::new("t");
        h.set_force_logging(true);
        assert!(h.logging());
        // The disable request is overridden, reported, and counted.
        assert!(h.set_logging(false));
        assert!(h.logging());
        assert_eq!(h.stats().gating_overrides, 1);
        // Releasing the force makes gating effective again.
        h.set_force_logging(false);
        assert!(!h.set_logging(false));
        assert!(!h.logging());
        assert_eq!(h.stats().gating_overrides, 1);
    }

    #[test]
    fn discard_keeps_arena_capacity_for_reuse() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", [0u64; 8]);
        h.set_logging(true);
        h.set_coalescing(false);
        for round in 0..3 {
            let _m = h.mark();
            for i in 0..16u64 {
                c.set(&mut h, [i; 8]);
            }
            h.discard_log();
            if round > 0 {
                assert!(
                    h.stats().arena_reuse_bytes > 0,
                    "warm rounds must reuse the arena"
                );
            }
        }
    }

    #[test]
    fn droppable_payloads_do_not_leak_on_discard_or_rollback() {
        // Strings own heap memory; exercising both exits of the journal under
        // a leak-checking allocator (bench_undo) keeps this honest. Here we
        // at least verify values survive the round-trips intact.
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", String::from("original"));
        h.set_logging(true);
        let m = h.mark();
        c.set(&mut h, "one".into());
        c.set(&mut h, "two".into());
        h.rollback_to(m);
        assert_eq!(c.get(&h), "original");
        c.set(&mut h, "three".into());
        h.discard_log();
        assert_eq!(c.get(&h), "three");
    }
}
