//! The checkpointed heap: object storage plus the undo log.

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::stats::HeapStats;

/// Marker trait for values that may live in a [`Heap`].
///
/// Blanket-implemented for every `Clone + Debug + Send + 'static` type, so in
/// practice any ordinary data type qualifies. The byte accounting used for
/// memory-overhead experiments approximates a value's size with
/// `size_of::<T>()`; containers refine this where they can (e.g. [`crate::PBuf`]
/// counts its actual payload).
pub trait HeapValue: Clone + fmt::Debug + Send + 'static {}
impl<T: Clone + fmt::Debug + Send + 'static> HeapValue for T {}

/// Identifier of an object within a heap, paired with the owning heap's id.
///
/// Typed handles ([`crate::PCell`] etc.) wrap an `ObjId`. Handles are plain
/// data: they survive component restart (the Recovery Server re-binds the
/// pristine server struct, whose handles were allocated deterministically at
/// init time, to the rolled-back heap).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjId {
    pub(crate) index: u32,
    pub(crate) heap_id: u32,
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjId({}@h{})", self.index, self.heap_id)
    }
}

/// A checkpoint position in the undo log.
///
/// Obtained from [`Heap::mark`] at the top of a request-processing loop;
/// passed to [`Heap::rollback_to`] to restore the state that existed when the
/// mark was taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mark {
    pub(crate) log_len: usize,
    pub(crate) heap_id: u32,
}

/// Internal object slot: a named, type-erased, clonable value.
pub(crate) struct Obj {
    pub(crate) name: &'static str,
    pub(crate) data: Box<dyn AnyObj>,
}

/// Object trait: `Any` for downcasting plus deep-clone support so that heap
/// images (server clones) can be taken.
pub(crate) trait AnyObj: Any + Send + fmt::Debug {
    fn clone_obj(&self) -> Box<dyn AnyObj>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Approximate resident size in bytes, for memory-overhead accounting.
    fn approx_bytes(&self) -> usize;
}

/// Wrapper implementing [`AnyObj`] for concrete container payloads.
pub(crate) struct Holder<T: HeapValue> {
    pub(crate) value: T,
    /// Containers with dynamic payloads (vec/map/buf) keep this updated;
    /// plain cells leave it at `size_of::<T>()`.
    pub(crate) extra_bytes: usize,
}

impl<T: HeapValue> fmt::Debug for Holder<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.value, f)
    }
}

impl<T: HeapValue> AnyObj for Holder<T> {
    fn clone_obj(&self) -> Box<dyn AnyObj> {
        Box::new(Holder { value: self.value.clone(), extra_bytes: self.extra_bytes })
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<T>() + self.extra_bytes
    }
}

/// One undo record: a closure that restores the previous value of a single
/// mutation, plus the number of bytes the record accounts for (address +
/// old-value payload, mirroring the paper's per-store log entries).
pub(crate) struct UndoOp {
    pub(crate) bytes: usize,
    pub(crate) undo: Box<dyn FnOnce(&mut Vec<Obj>) + Send>,
}

static NEXT_HEAP_ID: AtomicU32 = AtomicU32::new(1);

/// A component-local checkpointed heap.
///
/// All recoverable state of an OSIRIS server lives in exactly one `Heap`.
/// Mutations performed through the persistent containers append undo records
/// while logging is enabled; [`Heap::rollback_to`] restores a prior [`Mark`].
///
/// A heap is single-owner and accessed only from the kernel's event loop —
/// matching the paper's model where each server is a single (cooperatively
/// threaded) process.
pub struct Heap {
    pub(crate) objs: Vec<Obj>,
    pub(crate) log: Vec<UndoOp>,
    logging: bool,
    force_logging: bool,
    id: u32,
    name: &'static str,
    stats: HeapStats,
}

impl fmt::Debug for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Heap")
            .field("name", &self.name)
            .field("objects", &self.objs.len())
            .field("log_len", &self.log.len())
            .field("logging", &self.logging)
            .finish()
    }
}

impl Heap {
    /// Creates an empty heap for the component called `name`.
    pub fn new(name: &'static str) -> Self {
        Heap {
            objs: Vec::new(),
            log: Vec::new(),
            logging: false,
            force_logging: false,
            id: NEXT_HEAP_ID.fetch_add(1, Ordering::Relaxed),
            name,
            stats: HeapStats::default(),
        }
    }

    /// The component name this heap belongs to.
    pub fn name(&self) -> &'static str {
        self.name
    }

    pub(crate) fn id(&self) -> u32 {
        self.id
    }

    /// Allocates a new object slot holding `value` and returns its id.
    pub(crate) fn alloc_obj<T: HeapValue>(&mut self, name: &'static str, value: T) -> ObjId {
        let index = u32::try_from(self.objs.len()).expect("heap object count overflow");
        self.objs.push(Obj { name, data: Box::new(Holder { value, extra_bytes: 0 }) });
        ObjId { index, heap_id: self.id }
    }

    /// Immutable access to the payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if the handle belongs to a different heap or the stored type
    /// does not match — both are programming errors in RCB code.
    pub(crate) fn holder<T: HeapValue>(&self, id: ObjId) -> &Holder<T> {
        assert_eq!(id.heap_id, self.id, "handle used with foreign heap `{}`", self.name);
        self.objs[id.index as usize]
            .data
            .as_any()
            .downcast_ref::<Holder<T>>()
            .expect("heap object type mismatch")
    }

    /// Mutable access to the payload of `id`. Callers must have logged the
    /// undo record first. Does **not** touch statistics.
    pub(crate) fn holder_mut<T: HeapValue>(&mut self, id: ObjId) -> &mut Holder<T> {
        assert_eq!(id.heap_id, self.id, "handle used with foreign heap `{}`", self.name);
        self.objs[id.index as usize]
            .data
            .as_any_mut()
            .downcast_mut::<Holder<T>>()
            .expect("heap object type mismatch")
    }

    /// Records one logical memory write of `payload_bytes` bytes whose undo
    /// closure is `undo`. If logging is disabled only the write statistic is
    /// updated, mirroring the out-of-window fast path of the paper's cloned
    /// (uninstrumented) functions.
    pub(crate) fn record_write<F>(&mut self, payload_bytes: usize, undo: F)
    where
        F: FnOnce(&mut Vec<Obj>) + Send + 'static,
    {
        self.stats.writes += 1;
        if self.logging {
            // Address word + old payload, as in the paper's undo-log entries.
            let bytes = std::mem::size_of::<usize>() + payload_bytes;
            self.stats.undo_appends += 1;
            self.stats.undo_bytes_current += bytes;
            if self.stats.undo_bytes_current > self.stats.undo_bytes_peak {
                self.stats.undo_bytes_peak = self.stats.undo_bytes_current;
            }
            self.log.push(UndoOp { bytes, undo: Box::new(undo) });
        }
    }

    /// Whether write logging is currently enabled.
    pub fn logging(&self) -> bool {
        self.logging
    }

    /// Enables or disables write logging.
    ///
    /// The recovery-window machinery turns logging on when a window opens and
    /// off when it closes; this is the analog of the paper's function-cloning
    /// optimization that removes instrumentation overhead outside windows.
    pub fn set_logging(&mut self, on: bool) {
        self.logging = on || self.force_logging;
    }

    /// Forces write logging to stay enabled even when a recovery window
    /// closes. This models the paper's *unoptimized* configuration (Table V,
    /// "Without opt."): the store instrumentation runs unconditionally, so
    /// the undo log is maintained outside recovery windows too.
    pub fn set_force_logging(&mut self, force: bool) {
        self.force_logging = force;
        if force {
            self.logging = true;
        }
    }

    /// Returns a checkpoint mark at the current undo-log position.
    pub fn mark(&self) -> Mark {
        Mark { log_len: self.log.len(), heap_id: self.id }
    }

    /// Number of undo records currently held.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Bytes currently accounted to the undo log.
    pub fn log_bytes(&self) -> usize {
        self.stats.undo_bytes_current
    }

    /// Rolls the heap back to `mark`, undoing every logged mutation made
    /// since, in reverse order. Clears the replayed portion of the log.
    ///
    /// # Panics
    ///
    /// Panics if `mark` belongs to another heap or lies beyond the current
    /// log (e.g. the log was truncated after the mark was taken).
    pub fn rollback_to(&mut self, mark: Mark) {
        assert_eq!(mark.heap_id, self.id, "mark used with foreign heap `{}`", self.name);
        assert!(
            mark.log_len <= self.log.len(),
            "mark beyond undo log (log was truncated?): {} > {}",
            mark.log_len,
            self.log.len()
        );
        while self.log.len() > mark.log_len {
            let op = self.log.pop().expect("log length checked above");
            self.stats.undo_bytes_current = self.stats.undo_bytes_current.saturating_sub(op.bytes);
            (op.undo)(&mut self.objs);
        }
        self.stats.rollbacks += 1;
    }

    /// Discards the entire undo log without applying it.
    ///
    /// Called when a recovery window closes: past that point the checkpoint
    /// can never be restored, so the log is dead weight.
    pub fn discard_log(&mut self) {
        self.log.clear();
        self.stats.undo_bytes_current = 0;
    }

    /// Approximate resident size of all objects, in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.objs.iter().map(|o| o.data.approx_bytes()).sum()
    }

    /// Number of allocated objects.
    pub fn object_count(&self) -> usize {
        self.objs.len()
    }

    /// Statistics accumulated since construction (or the last reset).
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// Resets accumulated statistics (not the state or the log).
    pub fn reset_stats(&mut self) {
        self.stats = HeapStats::default();
    }

    /// Debug helper: names of all allocated objects, in allocation order.
    pub fn object_names(&self) -> Vec<&'static str> {
        self.objs.iter().map(|o| o.name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_rollback_roundtrip() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        h.set_logging(true);
        let m = h.mark();
        c.set(&mut h, 2);
        c.set(&mut h, 3);
        assert_eq!(h.log_len(), 2);
        h.rollback_to(m);
        assert_eq!(c.get(&h), 1);
        assert_eq!(h.log_len(), 0);
    }

    #[test]
    fn logging_disabled_skips_undo() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        h.set_logging(false);
        c.set(&mut h, 9);
        assert_eq!(h.log_len(), 0);
        assert_eq!(h.stats().writes, 1);
        assert_eq!(h.stats().undo_appends, 0);
    }

    #[test]
    fn discard_log_prevents_rollback_and_clears_bytes() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        h.set_logging(true);
        c.set(&mut h, 2);
        assert!(h.log_bytes() > 0);
        h.discard_log();
        assert_eq!(h.log_bytes(), 0);
        assert_eq!(c.get(&h), 2);
    }

    #[test]
    fn nested_marks_roll_back_in_order() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 0u32);
        h.set_logging(true);
        let m0 = h.mark();
        c.set(&mut h, 1);
        let m1 = h.mark();
        c.set(&mut h, 2);
        h.rollback_to(m1);
        assert_eq!(c.get(&h), 1);
        h.rollback_to(m0);
        assert_eq!(c.get(&h), 0);
    }

    #[test]
    #[should_panic(expected = "foreign heap")]
    fn foreign_handle_is_rejected() {
        let mut a = Heap::new("a");
        let mut b = Heap::new("b");
        let c = a.alloc_cell("x", 1u32);
        let _ = c.get(&b);
        let _ = &mut b;
    }

    #[test]
    #[should_panic(expected = "beyond undo log")]
    fn stale_mark_is_rejected() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 1u32);
        h.set_logging(true);
        c.set(&mut h, 2);
        let m = h.mark();
        h.discard_log();
        h.rollback_to(m);
    }

    #[test]
    fn peak_undo_bytes_tracks_high_water_mark() {
        let mut h = Heap::new("t");
        let c = h.alloc_cell("x", 0u64);
        h.set_logging(true);
        let m = h.mark();
        for i in 0..10 {
            c.set(&mut h, i);
        }
        let peak = h.stats().undo_bytes_peak;
        assert!(peak > 0);
        h.rollback_to(m);
        assert_eq!(h.stats().undo_bytes_peak, peak);
        assert_eq!(h.log_bytes(), 0);
    }
}
