//! Lightweight in-memory checkpointing for OSIRIS components.
//!
//! This crate is the Rust analog of the LLVM store-instrumentation pass and
//! static checkpointing library used by the OSIRIS prototype (Bhat et al.,
//! DSN 2016, building on Vogt et al., "Lightweight Memory Checkpointing",
//! DSN 2015). In the paper, every `store` instruction in an OS server is
//! instrumented to append an *(address, old value)* pair to an undo log;
//! restoring the checkpoint means replaying the log in reverse.
//!
//! Here, a component keeps all of its recoverable state inside a [`Heap`].
//! State is held in *persistent containers* — [`PCell`], [`PVec`], [`PMap`]
//! and [`PBuf`] — whose every mutation goes through the heap and, while
//! *write logging* is enabled, appends an undo record. Rolling back to a
//! [`Mark`] undoes every mutation made since that mark, byte-exactly.
//!
//! The paper's key optimization — disabling the store instrumentation outside
//! the recovery window via function cloning — corresponds to
//! [`Heap::set_logging`]: when logging is off, mutations skip the undo log
//! entirely (and the virtual-cost accounting in the kernel charges nothing
//! for it).
//!
//! # Example
//!
//! ```
//! use osiris_checkpoint::Heap;
//!
//! let mut heap = Heap::new("pm");
//! let counter = heap.alloc_cell("counter", 0u64);
//!
//! // Top of the request loop: take a checkpoint.
//! let mark = heap.mark();
//! heap.set_logging(true);
//!
//! counter.set(&mut heap, 42);
//! assert_eq!(counter.get(&heap), 42);
//!
//! // A crash happened: roll back to the checkpoint.
//! heap.rollback_to(mark);
//! assert_eq!(counter.get(&heap), 0);
//! ```
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod buf;
mod cas;
mod cell;
mod heap;
mod image;
// The typed undo journal is the one place allowed to use `unsafe`: it moves
// old-value payloads in and out of a type-erased byte arena under the
// monomorphized function pointers stored in each record.
#[allow(unsafe_code)]
mod journal;
mod map;
mod stats;
mod vec;

pub use buf::PBuf;
pub use cas::{ChunkStore, CHUNK_SIZE};
pub use cell::PCell;
pub use heap::{Heap, HeapValue, Mark, ObjId, UndoMode};
pub use image::{DeepImage, HeapImage, RestoreStats};
pub use journal::IntegrityError;
pub use map::PMap;
pub use stats::HeapStats;
pub use vec::PVec;
