//! The typed, allocation-free undo journal.
//!
//! The original implementation of [`crate::Heap`] logged every store as a
//! boxed `dyn FnOnce` closure — one allocator round-trip per logged write,
//! exactly the per-store overhead the paper's function-cloning optimization
//! exists to shave. This module replaces it with a *typed* journal:
//!
//! * [`UndoRecord`] — a plain struct tagged with an [`UndoKind`] covering the
//!   five container mutation shapes (cell set; vec set/push/pop/truncate;
//!   map insert/remove; buf write/extend). Typed variants carry monomorphized
//!   `restore`/`drop_payload` function pointers, so replay needs no dynamic
//!   dispatch through a trait object and no per-record allocation.
//! * [`Arena`] — a reusable byte arena holding the old-value payloads. Values
//!   are *moved* in (`ptr::copy_nonoverlapping` + `mem::forget`) and moved
//!   back out exactly once on rollback (`ptr::read_unaligned`), or dropped
//!   exactly once via the record's `drop_payload` when the log is discarded.
//!   `rollback`/`discard` only reset lengths — capacity is never freed, so a
//!   warm window logs with zero allocator calls.
//! * [`CoalesceIndex`] — a small open-addressing hash table keyed by
//!   `(object, slot)`. Repeated stores to the same location inside one
//!   logging span keep only the *first* old value: replaying records in
//!   reverse means the first record lands last and restores the span-start
//!   value, so dropping the later ones is rollback-equivalent while turning
//!   O(writes) undo bytes into O(distinct locations).
//!
//! This is the only module in the crate allowed to use `unsafe`; everything
//! unsafe is confined to moving payload bytes in and out of the arena under
//! the record's type witness (the monomorphized function pointers).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::mem::size_of;

use crate::heap::{HeapValue, Holder, Obj};
use crate::map::MapKey;

/// Per-record fixed accounting overhead: the address word, as in the paper's
/// *(address, old value)* undo-log entries.
const WORD: usize = size_of::<usize>();

fn off_u32(off: usize) -> u32 {
    u32::try_from(off).expect("undo arena exceeds 4 GiB")
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

/// Reusable byte arena for old-value payloads.
///
/// Payload bytes of typed records are type-erased: they are raw object
/// representations moved in with an untyped byte copy and only ever
/// reinterpreted through the owning record's monomorphized function pointers.
/// Buf records store plain initialized bytes and read them back as a slice.
pub(crate) struct Arena {
    bytes: Vec<u8>,
    /// Cumulative payload bytes appended without growing the allocation —
    /// i.e. bytes served from reused (warm) capacity.
    reused: u64,
}

impl Arena {
    pub(crate) fn new() -> Self {
        Arena {
            bytes: Vec::new(),
            reused: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.bytes.len()
    }

    pub(crate) fn reuse_bytes(&self) -> u64 {
        self.reused
    }

    pub(crate) fn reset_reuse(&mut self) {
        self.reused = 0;
    }

    pub(crate) fn capacity(&self) -> usize {
        self.bytes.capacity()
    }

    /// Fork support: restores the reuse counter and ensures at least
    /// `capacity` bytes of arena capacity (never shrinks).
    pub(crate) fn restore_warmth(&mut self, reused: u64, capacity: usize) {
        self.reused = reused;
        let have = self.bytes.capacity() - self.bytes.len();
        let want = capacity - self.bytes.len().min(capacity);
        if want > have {
            self.bytes.reserve_exact(want);
        }
    }

    fn note_reuse(&mut self, extra: usize) {
        if self.bytes.len() + extra <= self.bytes.capacity() {
            self.reused += extra as u64;
        }
    }

    /// Drops the bytes at `len..` from the arena without freeing capacity.
    pub(crate) fn truncate(&mut self, len: usize) {
        debug_assert!(len <= self.bytes.len());
        self.bytes.truncate(len);
    }

    pub(crate) fn reset(&mut self) {
        self.bytes.clear();
    }

    /// Appends initialized bytes (buf payloads); returns their offset.
    pub(crate) fn push_bytes(&mut self, src: &[u8]) -> u32 {
        self.note_reuse(src.len());
        let off = self.bytes.len();
        self.bytes.extend_from_slice(src);
        off_u32(off)
    }

    /// Appends the raw representation of `value` without dropping it.
    ///
    /// `ptr::copy_nonoverlapping` is an untyped copy, so padding bytes are
    /// carried over as-is; they are only ever read back as a whole `T`.
    #[allow(unsafe_code)]
    fn push_raw<T>(&mut self, value: &T) {
        let sz = size_of::<T>();
        self.bytes.reserve(sz);
        let off = self.bytes.len();
        // SAFETY: `reserve` guarantees capacity for `sz` more bytes, so the
        // destination range is in-bounds spare capacity; source and
        // destination cannot overlap (the value is not inside the arena).
        unsafe {
            std::ptr::copy_nonoverlapping(
                (value as *const T).cast::<u8>(),
                self.bytes.as_mut_ptr().add(off),
                sz,
            );
            self.bytes.set_len(off + sz);
        }
    }

    /// Moves `value` into the arena; returns its offset. The value must
    /// later be taken out (rollback) or dropped (discard) exactly once.
    pub(crate) fn push_value<T>(&mut self, value: T) -> u32 {
        self.note_reuse(size_of::<T>());
        let off = self.bytes.len();
        self.push_raw(&value);
        std::mem::forget(value);
        off_u32(off)
    }

    /// Clones each element of `items` into the arena, contiguously; returns
    /// the offset of the first element.
    pub(crate) fn push_clone_slice<T: Clone>(&mut self, items: &[T]) -> u32 {
        self.note_reuse(std::mem::size_of_val(items));
        let off = self.bytes.len();
        for item in items {
            let clone = item.clone();
            self.push_raw(&clone);
            std::mem::forget(clone);
        }
        off_u32(off)
    }

    /// Initialized payload bytes of a buf record.
    pub(crate) fn slice(&self, off: u32, len: usize) -> &[u8] {
        &self.bytes[off as usize..off as usize + len]
    }

    /// Flips one bit of the stored bytes — corruption-injection test
    /// support. The caller must flip it back before any payload is replayed
    /// or dropped through its typed function pointers.
    pub(crate) fn flip_bit(&mut self, byte: usize, bit: u8) {
        self.bytes[byte] ^= 1 << (bit & 7);
    }

    /// Moves the value stored at `off` back out of the arena.
    ///
    /// # Safety
    ///
    /// `off` must come from a `push_value`/`push_clone_slice` call for the
    /// same `T`, and each stored value must be taken at most once (the bytes
    /// are logically moved out; taking twice would double-drop).
    #[allow(unsafe_code)]
    pub(crate) unsafe fn take<T>(&self, off: u32) -> T {
        debug_assert!(off as usize + size_of::<T>() <= self.bytes.len());
        // SAFETY: per the contract above the bytes at `off` are the valid
        // representation of a `T`; `read_unaligned` has no alignment
        // requirement, which matters because the arena packs payloads densely.
        unsafe { std::ptr::read_unaligned(self.bytes.as_ptr().add(off as usize).cast::<T>()) }
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Monomorphized replay entry point: moves the record's payload out of the
/// arena and writes it back into the object it came from.
type RestoreFn = unsafe fn(&mut [Obj], &UndoRecord, &Arena);
/// Monomorphized discard entry point: drops the record's payload in place
/// (used when a window closes and the log is thrown away unapplied).
type DropFn = unsafe fn(&UndoRecord, &Arena);

/// The mutation shape a record undoes — one variant per container operation.
///
/// Typed variants carry the function pointers minted at append time (when the
/// concrete `T`/`K`/`V` were statically known); buf variants operate on plain
/// bytes and need none.
pub(crate) enum UndoKind {
    /// `PCell::set`/`update`: restore the old value.
    CellSet {
        restore: RestoreFn,
        drop_payload: DropFn,
    },
    /// `PVec::set`/`update`: restore the old element at `aux`.
    VecSet {
        restore: RestoreFn,
        drop_payload: DropFn,
    },
    /// `PVec::push`: pop the appended element (no payload).
    VecPush { restore: RestoreFn },
    /// `PVec::pop`: push the removed element back.
    VecPop {
        restore: RestoreFn,
        drop_payload: DropFn,
    },
    /// `PVec::truncate`: re-extend with the `aux` removed tail elements.
    VecTruncate {
        restore: RestoreFn,
        drop_payload: DropFn,
    },
    /// `PMap::insert`/`update`: restore the old binding (`aux` = had one).
    MapInsert {
        restore: RestoreFn,
        drop_payload: DropFn,
    },
    /// `PMap::remove`: re-insert the removed binding.
    MapRemove {
        restore: RestoreFn,
        drop_payload: DropFn,
    },
    /// `PBuf::write_at`: restore the overwritten bytes at offset `aux`, then
    /// truncate back to the old length `aux2`.
    BufWrite,
    /// `PBuf::truncate`: re-append the removed tail bytes.
    BufTruncate,
}

impl UndoKind {
    /// Stable discriminant folded into the integrity digest (the function
    /// pointers themselves are not digestible across runs).
    fn tag(&self) -> u64 {
        match self {
            UndoKind::CellSet { .. } => 1,
            UndoKind::VecSet { .. } => 2,
            UndoKind::VecPush { .. } => 3,
            UndoKind::VecPop { .. } => 4,
            UndoKind::VecTruncate { .. } => 5,
            UndoKind::MapInsert { .. } => 6,
            UndoKind::MapRemove { .. } => 7,
            UndoKind::BufWrite => 8,
            UndoKind::BufTruncate => 9,
        }
    }
}

/// One undo-log entry: the paper's *(address, old value)* pair, with the
/// old value stored out-of-line in the [`Arena`].
pub(crate) struct UndoRecord {
    pub(crate) kind: UndoKind,
    /// Object index within the heap (the "address").
    pub(crate) obj: u32,
    /// Arena offset of this record's payload. Because records are strictly
    /// LIFO, this is also the arena length to truncate back to when the
    /// record is popped.
    pub(crate) off: u32,
    /// Payload length in arena bytes.
    pub(crate) plen: u32,
    /// Kind-specific scalar: element index (`VecSet`), tail element count
    /// (`VecTruncate`), buffer offset (`BufWrite`), had-old flag
    /// (`MapInsert`).
    pub(crate) aux: u64,
    /// Kind-specific scalar: old buffer length (`BufWrite`).
    pub(crate) aux2: u64,
    /// Bytes this record accounts for in the undo-log statistics.
    pub(crate) bytes: usize,
    /// Journal digest *before* this record was appended; popping the record
    /// restores it, so the running digest always covers exactly the live
    /// records. Filled in by [`Journal::seal`].
    pub(crate) prev: u64,
}

fn holder_mut<T: HeapValue>(objs: &mut [Obj], obj: u32) -> &mut Holder<T> {
    objs[obj as usize]
        .data
        .as_any_mut()
        .downcast_mut::<Holder<T>>()
        .expect("undo type mismatch")
}

// Monomorphized restore/drop implementations. All of them uphold the arena
// contract: each payload is taken exactly once.

#[allow(unsafe_code)]
unsafe fn restore_cell<T: HeapValue>(objs: &mut [Obj], rec: &UndoRecord, arena: &Arena) {
    // SAFETY: payload pushed by `push_cell::<T>` for this record.
    holder_mut::<T>(objs, rec.obj).value = unsafe { arena.take::<T>(rec.off) };
}

#[allow(unsafe_code)]
unsafe fn restore_vec_set<T: HeapValue>(objs: &mut [Obj], rec: &UndoRecord, arena: &Arena) {
    let h = holder_mut::<Vec<T>>(objs, rec.obj);
    // SAFETY: payload pushed by `push_vec_set::<T>` for this record.
    h.value[rec.aux as usize] = unsafe { arena.take::<T>(rec.off) };
}

unsafe fn restore_vec_push<T: HeapValue>(objs: &mut [Obj], rec: &UndoRecord, _arena: &Arena) {
    let h = holder_mut::<Vec<T>>(objs, rec.obj);
    h.value.pop();
    h.extra_bytes = h.value.len() * size_of::<T>();
}

#[allow(unsafe_code)]
unsafe fn restore_vec_pop<T: HeapValue>(objs: &mut [Obj], rec: &UndoRecord, arena: &Arena) {
    // SAFETY: payload pushed by `push_vec_pop::<T>` for this record.
    let value = unsafe { arena.take::<T>(rec.off) };
    let h = holder_mut::<Vec<T>>(objs, rec.obj);
    h.value.push(value);
    h.extra_bytes = h.value.len() * size_of::<T>();
}

#[allow(unsafe_code)]
unsafe fn restore_vec_truncate<T: HeapValue>(objs: &mut [Obj], rec: &UndoRecord, arena: &Arena) {
    let h = holder_mut::<Vec<T>>(objs, rec.obj);
    for i in 0..rec.aux as usize {
        let off = rec.off + off_u32(i * size_of::<T>());
        // SAFETY: element `i` of the tail pushed by `push_vec_truncate::<T>`.
        h.value.push(unsafe { arena.take::<T>(off) });
    }
    h.extra_bytes = h.value.len() * size_of::<T>();
}

#[allow(unsafe_code)]
unsafe fn drop_value<T: HeapValue>(rec: &UndoRecord, arena: &Arena) {
    // SAFETY: single payload value pushed for this record.
    drop(unsafe { arena.take::<T>(rec.off) });
}

#[allow(unsafe_code)]
unsafe fn drop_slice<T: HeapValue>(rec: &UndoRecord, arena: &Arena) {
    for i in 0..rec.aux as usize {
        // SAFETY: element `i` of the tail pushed for this record.
        drop(unsafe { arena.take::<T>(rec.off + off_u32(i * size_of::<T>())) });
    }
}

#[allow(unsafe_code)]
unsafe fn restore_map_insert<K: MapKey, V: HeapValue>(
    objs: &mut [Obj],
    rec: &UndoRecord,
    arena: &Arena,
) {
    // SAFETY: key (and value iff `aux == 1`) pushed by `push_map_insert`.
    let key = unsafe { arena.take::<K>(rec.off) };
    let old = if rec.aux == 1 {
        Some(unsafe { arena.take::<V>(rec.off + off_u32(size_of::<K>())) })
    } else {
        None
    };
    let h = holder_mut::<BTreeMap<K, V>>(objs, rec.obj);
    match old {
        Some(v) => {
            h.value.insert(key, v);
        }
        None => {
            h.value.remove(&key);
        }
    }
    h.extra_bytes = h.value.len() * (size_of::<K>() + size_of::<V>());
}

#[allow(unsafe_code)]
unsafe fn drop_map_insert<K: MapKey, V: HeapValue>(rec: &UndoRecord, arena: &Arena) {
    // SAFETY: mirrors `restore_map_insert`'s payload layout.
    drop(unsafe { arena.take::<K>(rec.off) });
    if rec.aux == 1 {
        drop(unsafe { arena.take::<V>(rec.off + off_u32(size_of::<K>())) });
    }
}

#[allow(unsafe_code)]
unsafe fn restore_map_remove<K: MapKey, V: HeapValue>(
    objs: &mut [Obj],
    rec: &UndoRecord,
    arena: &Arena,
) {
    // SAFETY: key then value pushed by `push_map_remove`.
    let key = unsafe { arena.take::<K>(rec.off) };
    let value = unsafe { arena.take::<V>(rec.off + off_u32(size_of::<K>())) };
    let h = holder_mut::<BTreeMap<K, V>>(objs, rec.obj);
    h.value.insert(key, value);
    h.extra_bytes = h.value.len() * (size_of::<K>() + size_of::<V>());
}

#[allow(unsafe_code)]
unsafe fn drop_map_remove<K: MapKey, V: HeapValue>(rec: &UndoRecord, arena: &Arena) {
    // SAFETY: mirrors `restore_map_remove`'s payload layout.
    drop(unsafe { arena.take::<K>(rec.off) });
    drop(unsafe { arena.take::<V>(rec.off + off_u32(size_of::<K>())) });
}

fn restore_buf_write(objs: &mut [Obj], rec: &UndoRecord, arena: &Arena) {
    let h = holder_mut::<Vec<u8>>(objs, rec.obj);
    let offset = rec.aux as usize;
    let overwritten = arena.slice(rec.off, rec.plen as usize);
    let restore_end = offset + overwritten.len();
    if restore_end <= h.value.len() {
        h.value[offset..restore_end].copy_from_slice(overwritten);
    }
    h.value.truncate(rec.aux2 as usize);
    h.extra_bytes = h.value.len();
}

fn restore_buf_truncate(objs: &mut [Obj], rec: &UndoRecord, arena: &Arena) {
    let h = holder_mut::<Vec<u8>>(objs, rec.obj);
    h.value
        .extend_from_slice(arena.slice(rec.off, rec.plen as usize));
    h.extra_bytes = h.value.len();
}

// ---------------------------------------------------------------------------
// Coalescing index
// ---------------------------------------------------------------------------

/// Coalescing slot for a whole-object location (a `PCell`).
const SLOT_WHOLE: u64 = u64::MAX;
const INDEX_INITIAL: usize = 256;
const INDEX_MAX: usize = 1 << 16;
const PROBE_LIMIT: usize = 8;

/// The SplitMix64 finalizer (Steele, Lea & Flood) — duplicated from
/// `osiris-rng` so this crate stays dependency-free.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Integrity digest
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit offset basis: the digest of an empty journal. Hand-rolled
/// like [`mix64`] so this crate stays dependency-free.
pub(crate) const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Folds `bytes` into an FNV-1a running digest.
pub(crate) fn fnv1a_bytes(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest = (digest ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    digest
}

/// Folds one little-endian `u64` into an FNV-1a running digest.
pub(crate) fn fnv1a_u64(digest: u64, v: u64) -> u64 {
    fnv1a_bytes(digest, &v.to_le_bytes())
}

/// Why an undo-journal or heap-image integrity check failed.
///
/// Returned by [`crate::Heap::verify_journal`] and
/// [`crate::HeapImage::verify`]; the kernel's recovery path treats any
/// variant as "this checkpoint cannot be trusted" and falls back to the next
/// rung of the recovery chain instead of replaying corrupted state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrityError {
    /// Record `index`'s payload range lies beyond the arena: the journal
    /// tail was torn off (records and payload bytes disagree).
    TornPayload {
        /// Index of the offending record, oldest first.
        index: usize,
    },
    /// Record `index`'s chained prior digest does not match the digest
    /// recomputed over the records before it.
    RecordChain {
        /// Index of the offending record, oldest first.
        index: usize,
    },
    /// The digest recomputed over the whole journal does not match the
    /// running digest maintained at append time.
    DigestMismatch {
        /// The running digest the journal maintained incrementally.
        expected: u64,
        /// The digest recomputed from the records and arena.
        actual: u64,
    },
    /// A heap image's structural digest does not match its contents.
    ImageDigest {
        /// The digest captured when the image was cloned.
        expected: u64,
        /// The digest recomputed from the image's objects.
        actual: u64,
    },
    /// A chunk referenced by a heap-image manifest is not resident in the
    /// content-addressed store (refcount lifecycle bug or foreign store).
    MissingChunk {
        /// The manifest's digest for the missing chunk.
        digest: u64,
    },
    /// A resident chunk's content no longer matches the digest it is keyed
    /// under: the stored payload was corrupted after insertion.
    ChunkDigest {
        /// The digest the chunk is keyed under (captured at insert).
        expected: u64,
        /// The digest recomputed from the chunk's current content.
        actual: u64,
    },
    /// A heap-image manifest's byte accounting disagrees with the chunk
    /// store's: the `bytes()` total summed at clone time does not match what
    /// the referenced chunks actually hold.
    ImageBytes {
        /// Bytes the manifest claims.
        expected: u64,
        /// Bytes accounted by the referenced chunks.
        actual: u64,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::TornPayload { index } => {
                write!(
                    f,
                    "undo record #{index} payload lies beyond the arena (torn tail)"
                )
            }
            IntegrityError::RecordChain { index } => {
                write!(f, "undo record #{index} breaks the journal digest chain")
            }
            IntegrityError::DigestMismatch { expected, actual } => {
                write!(
                    f,
                    "journal digest mismatch: expected {expected:#x}, recomputed {actual:#x}"
                )
            }
            IntegrityError::ImageDigest { expected, actual } => {
                write!(
                    f,
                    "heap image digest mismatch: expected {expected:#x}, recomputed {actual:#x}"
                )
            }
            IntegrityError::MissingChunk { digest } => {
                write!(f, "manifest chunk {digest:#x} not resident in chunk store")
            }
            IntegrityError::ChunkDigest { expected, actual } => {
                write!(
                    f,
                    "chunk content mismatch: keyed {expected:#x}, recomputed {actual:#x}"
                )
            }
            IntegrityError::ImageBytes { expected, actual } => {
                write!(
                    f,
                    "heap image byte accounting mismatch: manifest {expected}, chunks {actual}"
                )
            }
        }
    }
}

/// Folds one record (header scalars + arena payload bytes) into the digest.
fn fold_record(digest: u64, rec: &UndoRecord, arena: &Arena) -> u64 {
    let mut d = fnv1a_u64(digest, rec.kind.tag());
    d = fnv1a_u64(d, u64::from(rec.obj));
    d = fnv1a_u64(d, u64::from(rec.off));
    d = fnv1a_u64(d, u64::from(rec.plen));
    d = fnv1a_u64(d, rec.aux);
    d = fnv1a_u64(d, rec.aux2);
    fnv1a_bytes(d, arena.slice(rec.off, rec.plen as usize))
}

#[derive(Clone, Copy, Default)]
struct Entry {
    /// Epoch stamp; an entry whose epoch differs from the index's is empty.
    epoch: u32,
    obj: u32,
    slot: u64,
    /// Journal position of the record covering this location.
    pos: u32,
    /// Payload bytes that record restores at this location (buf writes have
    /// variable coverage; a later shorter write is covered, a longer one not).
    covered: u32,
}

/// Open-addressing index from `(object, slot)` to the journal record that
/// already covers that location in the current logging span.
///
/// Invalidation is O(1) by bumping the epoch; the table itself is reused
/// forever (never freed), keeping the hot path allocation-free once warm.
/// The index is best-effort: dropping an entry (probe overflow at max size)
/// merely forfeits coalescing for that location, never correctness.
pub(crate) struct CoalesceIndex {
    table: Vec<Entry>,
    epoch: u32,
}

impl CoalesceIndex {
    fn new() -> Self {
        CoalesceIndex {
            table: Vec::new(),
            epoch: 1,
        }
    }

    fn home(&self, obj: u32, slot: u64) -> usize {
        mix64((u64::from(obj) << 32) ^ slot.rotate_left(17)) as usize
    }

    /// Forgets every entry in O(1).
    fn invalidate_all(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: ancient entries could alias the fresh epoch, so
            // pay for a real clear once every 2^32 invalidations.
            self.table.fill(Entry::default());
            self.epoch = 1;
        }
    }

    /// Is `(obj, slot)` already covered by a record at position `>= barrier`
    /// restoring at least `covered` payload bytes?
    fn lookup(&self, obj: u32, slot: u64, covered: u32, barrier: u32) -> bool {
        if self.table.is_empty() {
            return false;
        }
        let mask = self.table.len() - 1;
        let home = self.home(obj, slot);
        for i in 0..PROBE_LIMIT {
            let e = &self.table[(home + i) & mask];
            if e.epoch != self.epoch {
                // First empty slot ends the probe cluster (inserts always
                // fill the first empty slot, so nothing lives past one).
                return false;
            }
            if e.obj == obj && e.slot == slot {
                return e.pos >= barrier && covered <= e.covered;
            }
        }
        false
    }

    /// Records that journal position `pos` covers `(obj, slot)`.
    fn insert(&mut self, obj: u32, slot: u64, pos: u32, covered: u32) {
        if self.table.is_empty() {
            self.table = vec![Entry::default(); INDEX_INITIAL];
        }
        loop {
            if self.try_insert(obj, slot, pos, covered) {
                return;
            }
            if self.table.len() >= INDEX_MAX {
                // Best-effort: give up coalescing for this location.
                return;
            }
            self.grow();
        }
    }

    fn try_insert(&mut self, obj: u32, slot: u64, pos: u32, covered: u32) -> bool {
        let mask = self.table.len() - 1;
        let home = self.home(obj, slot);
        let mut free = None;
        for i in 0..PROBE_LIMIT {
            let idx = (home + i) & mask;
            let e = &self.table[idx];
            if e.epoch == self.epoch {
                if e.obj == obj && e.slot == slot {
                    free = Some(idx);
                    break;
                }
            } else if free.is_none() {
                free = Some(idx);
            }
        }
        match free {
            Some(idx) => {
                self.table[idx] = Entry {
                    epoch: self.epoch,
                    obj,
                    slot,
                    pos,
                    covered,
                };
                true
            }
            None => false,
        }
    }

    fn grow(&mut self) {
        let doubled = self.table.len() * 2;
        let old = std::mem::replace(&mut self.table, vec![Entry::default(); doubled]);
        let live_epoch = self.epoch;
        for e in old {
            if e.epoch == live_epoch {
                // Re-home; on probe overflow the entry is simply dropped.
                let _ = self.try_insert(e.obj, e.slot, e.pos, e.covered);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// The typed undo journal: record list + payload arena + coalescing index.
pub(crate) struct Journal {
    records: Vec<UndoRecord>,
    arena: Arena,
    index: CoalesceIndex,
    /// Journal length at the most recent [`crate::Heap::mark`]. Coalescing
    /// must never suppress an append whose covering record lies before the
    /// latest mark — a rollback to that mark would then miss the location.
    /// `Cell` because `mark` takes `&self`.
    barrier: Cell<u32>,
    /// Incremental FNV-1a digest over every live record (header scalars +
    /// payload bytes), maintained at append/pop time with no allocations.
    /// [`Journal::verify`] recomputes it from scratch before a rollback
    /// trusts the log.
    digest: u64,
}

impl Journal {
    pub(crate) fn new() -> Self {
        Journal {
            records: Vec::new(),
            arena: Arena::new(),
            index: CoalesceIndex::new(),
            barrier: Cell::new(0),
            digest: FNV_OFFSET,
        }
    }

    /// Chains `rec` into the running digest and appends it. Every append
    /// path funnels through here so the digest covers the whole journal.
    fn seal(&mut self, mut rec: UndoRecord) {
        rec.prev = self.digest;
        self.digest = fold_record(self.digest, &rec, &self.arena);
        self.records.push(rec);
    }

    /// The running integrity digest (FNV offset basis when empty).
    pub(crate) fn digest(&self) -> u64 {
        self.digest
    }

    /// Recomputes the digest chain from scratch — O(records + payload
    /// bytes) — and compares it against the incrementally maintained state.
    ///
    /// Any single bit flip in a record header or payload byte, and any torn
    /// tail (records or arena bytes lost without the bookkeeping), yields an
    /// error. Called by the kernel before a rollback replays the log.
    pub(crate) fn verify(&self) -> Result<(), IntegrityError> {
        let mut running = FNV_OFFSET;
        for (index, rec) in self.records.iter().enumerate() {
            if rec.off as usize + rec.plen as usize > self.arena.len() {
                return Err(IntegrityError::TornPayload { index });
            }
            if rec.prev != running {
                return Err(IntegrityError::RecordChain { index });
            }
            running = fold_record(running, rec, &self.arena);
        }
        if running != self.digest {
            return Err(IntegrityError::DigestMismatch {
                expected: self.digest,
                actual: running,
            });
        }
        Ok(())
    }

    // -- corruption-injection test support ---------------------------------

    /// Flips one bit of an arena payload byte. The caller must flip it back
    /// before the journal is replayed or discarded (typed payloads are
    /// reinterpreted through their function pointers).
    pub(crate) fn corrupt_arena_bit(&mut self, byte: usize, bit: u8) {
        self.arena.flip_bit(byte, bit);
    }

    /// Flips one bit of record `index`'s `aux` scalar. Reversible; flip the
    /// same bit again to restore the record.
    pub(crate) fn corrupt_record_bit(&mut self, index: usize, bit: u32) {
        self.records[index].aux ^= 1u64 << (bit & 63);
    }

    /// Tears the newest `n` records off the journal *without* the digest
    /// bookkeeping — simulating a torn write. The records' payloads are
    /// leaked (never dropped), so this is strictly test support.
    pub(crate) fn tear_tail(&mut self, n: usize) {
        for _ in 0..n {
            if let Some(rec) = self.records.pop() {
                self.arena.truncate(rec.off as usize);
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.records.len()
    }

    pub(crate) fn arena_len(&self) -> usize {
        self.arena.len()
    }

    pub(crate) fn arena_reuse_bytes(&self) -> u64 {
        self.arena.reuse_bytes()
    }

    pub(crate) fn reset_reuse(&mut self) {
        self.arena.reset_reuse();
    }

    /// Fork support: the arena's reuse counter and capacity, captured by
    /// heap snapshots so a fork continues the donor's warm-arena accounting.
    pub(crate) fn warmth(&self) -> (u64, usize) {
        (self.arena.reuse_bytes(), self.arena.capacity())
    }

    /// Fork support: restores arena warmth recorded by [`Journal::warmth`].
    pub(crate) fn restore_warmth(&mut self, reused: u64, capacity: usize) {
        self.arena.restore_warmth(reused, capacity);
    }

    /// Called from `Heap::mark`: raises the coalescing barrier so records
    /// before the new mark no longer justify skipping appends.
    pub(crate) fn note_mark(&self) {
        let len = off_u32(self.records.len());
        if len > self.barrier.get() {
            self.barrier.set(len);
        }
    }

    /// Drops all coalescing knowledge (after rollback, discard, or a logging
    /// span boundary).
    pub(crate) fn invalidate_coalescing(&mut self) {
        self.index.invalidate_all();
        self.barrier.set(off_u32(self.records.len()));
    }

    fn next_pos(&self) -> u32 {
        off_u32(self.records.len())
    }

    // -- coverage queries (checked *before* cloning the old value) ---------

    pub(crate) fn cell_covered<T>(&self, obj: u32) -> bool {
        self.index
            .lookup(obj, SLOT_WHOLE, size_of::<T>() as u32, self.barrier.get())
    }

    pub(crate) fn vec_covered<T>(&self, obj: u32, index: usize) -> bool {
        self.index
            .lookup(obj, index as u64, size_of::<T>() as u32, self.barrier.get())
    }

    pub(crate) fn buf_covered(&self, obj: u32, offset: usize, write_len: usize) -> bool {
        self.index
            .lookup(obj, offset as u64, off_u32(write_len), self.barrier.get())
    }

    // -- appends ------------------------------------------------------------

    pub(crate) fn push_cell<T: HeapValue>(&mut self, obj: u32, old: T, coalesce: bool) -> usize {
        let bytes = WORD + size_of::<T>();
        let pos = self.next_pos();
        let off = self.arena.push_value(old);
        self.seal(UndoRecord {
            kind: UndoKind::CellSet {
                restore: restore_cell::<T>,
                drop_payload: drop_value::<T>,
            },
            obj,
            off,
            plen: size_of::<T>() as u32,
            aux: 0,
            aux2: 0,
            bytes,
            prev: 0,
        });
        if coalesce {
            self.index
                .insert(obj, SLOT_WHOLE, pos, size_of::<T>() as u32);
        }
        bytes
    }

    pub(crate) fn push_vec_set<T: HeapValue>(
        &mut self,
        obj: u32,
        index: usize,
        old: T,
        coalesce: bool,
    ) -> usize {
        let bytes = WORD + size_of::<T>();
        let pos = self.next_pos();
        let off = self.arena.push_value(old);
        self.seal(UndoRecord {
            kind: UndoKind::VecSet {
                restore: restore_vec_set::<T>,
                drop_payload: drop_value::<T>,
            },
            obj,
            off,
            plen: size_of::<T>() as u32,
            aux: index as u64,
            aux2: 0,
            bytes,
            prev: 0,
        });
        if coalesce {
            self.index
                .insert(obj, index as u64, pos, size_of::<T>() as u32);
        }
        bytes
    }

    pub(crate) fn push_vec_push<T: HeapValue>(&mut self, obj: u32) -> usize {
        let bytes = WORD + size_of::<T>();
        self.seal(UndoRecord {
            kind: UndoKind::VecPush {
                restore: restore_vec_push::<T>,
            },
            obj,
            off: off_u32(self.arena.len()),
            plen: 0,
            aux: 0,
            aux2: 0,
            bytes,
            prev: 0,
        });
        bytes
    }

    pub(crate) fn push_vec_pop<T: HeapValue>(&mut self, obj: u32, old: T) -> usize {
        let bytes = WORD + size_of::<T>();
        let off = self.arena.push_value(old);
        self.seal(UndoRecord {
            kind: UndoKind::VecPop {
                restore: restore_vec_pop::<T>,
                drop_payload: drop_value::<T>,
            },
            obj,
            off,
            plen: size_of::<T>() as u32,
            aux: 0,
            aux2: 0,
            bytes,
            prev: 0,
        });
        bytes
    }

    pub(crate) fn push_vec_truncate<T: HeapValue>(&mut self, obj: u32, tail: &[T]) -> usize {
        let bytes = WORD + std::mem::size_of_val(tail);
        let off = self.arena.push_clone_slice(tail);
        self.seal(UndoRecord {
            kind: UndoKind::VecTruncate {
                restore: restore_vec_truncate::<T>,
                drop_payload: drop_slice::<T>,
            },
            obj,
            off,
            plen: off_u32(std::mem::size_of_val(tail)),
            aux: tail.len() as u64,
            aux2: 0,
            bytes,
            prev: 0,
        });
        bytes
    }

    pub(crate) fn push_map_insert<K: MapKey, V: HeapValue>(
        &mut self,
        obj: u32,
        key: K,
        old: Option<V>,
    ) -> usize {
        let bytes = WORD + size_of::<K>() + size_of::<V>();
        let off = self.arena.push_value(key);
        let had_old = old.is_some();
        let mut plen = size_of::<K>();
        if let Some(v) = old {
            self.arena.push_value(v);
            plen += size_of::<V>();
        }
        self.seal(UndoRecord {
            kind: UndoKind::MapInsert {
                restore: restore_map_insert::<K, V>,
                drop_payload: drop_map_insert::<K, V>,
            },
            obj,
            off,
            plen: off_u32(plen),
            aux: u64::from(had_old),
            aux2: 0,
            bytes,
            prev: 0,
        });
        bytes
    }

    pub(crate) fn push_map_remove<K: MapKey, V: HeapValue>(
        &mut self,
        obj: u32,
        key: K,
        old: V,
    ) -> usize {
        let bytes = WORD + size_of::<K>() + size_of::<V>();
        let off = self.arena.push_value(key);
        self.arena.push_value(old);
        self.seal(UndoRecord {
            kind: UndoKind::MapRemove {
                restore: restore_map_remove::<K, V>,
                drop_payload: drop_map_remove::<K, V>,
            },
            obj,
            off,
            plen: off_u32(size_of::<K>() + size_of::<V>()),
            aux: 0,
            aux2: 0,
            bytes,
            prev: 0,
        });
        bytes
    }

    pub(crate) fn push_buf_write(
        &mut self,
        obj: u32,
        offset: usize,
        overwritten: &[u8],
        old_len: usize,
        write_len: usize,
        coalesce: bool,
    ) -> usize {
        let bytes = WORD + write_len;
        let pos = self.next_pos();
        let off = self.arena.push_bytes(overwritten);
        self.seal(UndoRecord {
            kind: UndoKind::BufWrite,
            obj,
            off,
            plen: off_u32(overwritten.len()),
            aux: offset as u64,
            aux2: old_len as u64,
            bytes,
            prev: 0,
        });
        if coalesce {
            self.index
                .insert(obj, offset as u64, pos, off_u32(write_len));
        }
        bytes
    }

    pub(crate) fn push_buf_truncate(&mut self, obj: u32, tail: &[u8]) -> usize {
        let bytes = WORD + tail.len();
        let off = self.arena.push_bytes(tail);
        self.seal(UndoRecord {
            kind: UndoKind::BufTruncate,
            obj,
            off,
            plen: off_u32(tail.len()),
            aux: 0,
            aux2: 0,
            bytes,
            prev: 0,
        });
        bytes
    }

    // -- replay / discard ---------------------------------------------------

    /// Pops the newest record, applies its restore, and releases its arena
    /// payload. Returns the record's accounted bytes and the index of the
    /// object it restored (so the heap can dirty that object's epoch).
    ///
    /// # Panics
    ///
    /// Panics if the journal is empty.
    #[allow(unsafe_code)]
    pub(crate) fn pop_and_apply(&mut self, objs: &mut [Obj]) -> (usize, u32) {
        let rec = self.records.pop().expect("pop from empty journal");
        self.digest = rec.prev;
        match rec.kind {
            UndoKind::CellSet { restore, .. }
            | UndoKind::VecSet { restore, .. }
            | UndoKind::VecPush { restore }
            | UndoKind::VecPop { restore, .. }
            | UndoKind::VecTruncate { restore, .. }
            | UndoKind::MapInsert { restore, .. }
            | UndoKind::MapRemove { restore, .. } => {
                // SAFETY: `restore` was minted for this record's payload
                // type at append time, and LIFO replay takes each payload
                // exactly once before the arena is truncated below.
                unsafe { restore(objs, &rec, &self.arena) }
            }
            UndoKind::BufWrite => restore_buf_write(objs, &rec, &self.arena),
            UndoKind::BufTruncate => restore_buf_truncate(objs, &rec, &self.arena),
        }
        self.arena.truncate(rec.off as usize);
        (rec.bytes, rec.obj)
    }

    /// Drops every record's payload without applying it and resets lengths
    /// (never capacity). Called from `discard_log` and `Drop`.
    #[allow(unsafe_code)]
    pub(crate) fn discard(&mut self) {
        for rec in self.records.drain(..) {
            match rec.kind {
                UndoKind::CellSet { drop_payload, .. }
                | UndoKind::VecSet { drop_payload, .. }
                | UndoKind::VecPop { drop_payload, .. }
                | UndoKind::VecTruncate { drop_payload, .. }
                | UndoKind::MapInsert { drop_payload, .. }
                | UndoKind::MapRemove { drop_payload, .. } => {
                    // SAFETY: discarding is the only other way a payload
                    // leaves the arena; each record is drained exactly once.
                    unsafe { drop_payload(&rec, &self.arena) }
                }
                UndoKind::VecPush { .. } | UndoKind::BufWrite | UndoKind::BufTruncate => {}
            }
        }
        self.arena.reset();
        self.digest = FNV_OFFSET;
        self.invalidate_coalescing();
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        // Payloads still in the arena own heap data (Strings, Vecs…); drop
        // them properly rather than leaking when the heap itself dies.
        self.discard();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_index_basic_hit_and_barrier() {
        let mut idx = CoalesceIndex::new();
        assert!(!idx.lookup(1, 5, 8, 0));
        idx.insert(1, 5, 3, 8);
        assert!(idx.lookup(1, 5, 8, 0));
        assert!(idx.lookup(1, 5, 4, 0), "smaller coverage is still covered");
        assert!(!idx.lookup(1, 5, 9, 0), "larger coverage is not");
        assert!(
            !idx.lookup(1, 5, 8, 4),
            "record before the barrier does not count"
        );
        assert!(!idx.lookup(2, 5, 8, 0));
        assert!(!idx.lookup(1, 6, 8, 0));
    }

    #[test]
    fn coalesce_index_invalidate_forgets_everything() {
        let mut idx = CoalesceIndex::new();
        for slot in 0..100u64 {
            idx.insert(7, slot, slot as u32, 8);
        }
        assert!(idx.lookup(7, 99, 8, 0));
        idx.invalidate_all();
        for slot in 0..100u64 {
            assert!(!idx.lookup(7, slot, 8, 0));
        }
    }

    #[test]
    fn coalesce_index_grows_past_initial_capacity() {
        let mut idx = CoalesceIndex::new();
        let n = (INDEX_INITIAL * 4) as u64;
        for slot in 0..n {
            idx.insert(1, slot, slot as u32, 8);
        }
        let hits = (0..n).filter(|&s| idx.lookup(1, s, 8, 0)).count();
        // Growth re-homes entries; a tiny fraction may be dropped on probe
        // overflow, but the vast majority must survive.
        assert!(
            hits as f64 > n as f64 * 0.95,
            "only {hits}/{n} entries survived growth"
        );
    }

    #[test]
    fn arena_push_take_roundtrip_for_droppable_values() {
        let mut arena = Arena::new();
        let off_a = arena.push_value(String::from("hello"));
        let off_b = arena.push_value(vec![1u32, 2, 3]);
        #[allow(unsafe_code)]
        // SAFETY: offsets and types match the pushes above, taken once each.
        let (a, b) = unsafe { (arena.take::<String>(off_a), arena.take::<Vec<u32>>(off_b)) };
        assert_eq!(a, "hello");
        assert_eq!(b, vec![1, 2, 3]);
        arena.reset();
        assert_eq!(arena.len(), 0);
    }

    #[test]
    fn arena_tracks_reuse_only_within_capacity() {
        let mut arena = Arena::new();
        arena.push_bytes(&[0u8; 1024]);
        let cold = arena.reuse_bytes();
        arena.reset();
        arena.push_bytes(&[0u8; 1024]);
        assert_eq!(
            arena.reuse_bytes(),
            cold + 1024,
            "warm append counts as reuse"
        );
    }
}
