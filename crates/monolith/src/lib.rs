//! A monolithic baseline operating system.
//!
//! Implements exactly the syscall ABI of `osiris-kernel` — so every workload
//! program runs unmodified — but as one address space with direct function
//! calls: no message passing, no context switches between OS components, no
//! fault isolation and no recovery. This is the "Linux" role in the paper's
//! Table IV: comparing it against the compartmentalized OSIRIS baseline
//! isolates the architectural cost of compartmentalization itself.
//!
//! The cost model is shared with the microkernel simulator; the monolith
//! simply never pays `ipc_send`/`ipc_deliver`, performs file I/O
//! synchronously (a cache miss charges the disk latency directly instead of
//! parking a server thread), and does no undo logging.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap, VecDeque};

use osiris_kernel::abi::{
    Errno, Fd, FileStat, OpenFlags, Pid, SeekFrom, Signal, SysReply, Syscall,
};
use osiris_kernel::{CostModel, OsEngine, ShutdownKind, SyscallId, VirtualClock};

const MAX_FDS: u32 = 64;
const BLOCK_SIZE: usize = 1024;
/// Pages in a fresh process image (matches the microkernel VM server).
const IMG_PAGES: u64 = 8;

#[derive(Clone, Debug, PartialEq, Eq)]
enum ProcState {
    Alive,
    Zombie(i32),
}

#[derive(Clone, Debug)]
struct Proc {
    ppid: u32,
    state: ProcState,
    masked: Vec<Signal>,
    pending: Vec<Signal>,
    data_pages: u64,
    mappings: BTreeMap<u64, u64>,
}

impl Proc {
    fn fresh(ppid: u32) -> Self {
        Proc {
            ppid,
            state: ProcState::Alive,
            masked: Vec::new(),
            pending: Vec::new(),
            data_pages: IMG_PAGES,
            mappings: BTreeMap::new(),
        }
    }

    fn resident(&self) -> u64 {
        self.data_pages + self.mappings.values().sum::<u64>()
    }
}

#[derive(Clone, Debug)]
enum Node {
    File(Vec<u8>),
    Dir(BTreeMap<String, u64>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Target {
    File { ino: u64 },
    PipeR { id: u32 },
    PipeW { id: u32 },
}

#[derive(Clone, Debug)]
struct Open {
    target: Target,
    offset: u64,
    flags: OpenFlags,
    refs: u32,
}

#[derive(Clone, Debug)]
struct MPipe {
    buf: VecDeque<u8>,
    readers: u32,
    writers: u32,
    waiting: Vec<(SyscallId, Pid, u32)>,
}

/// The monolithic OS engine.
///
/// ```
/// use osiris_kernel::{Host, ProgramRegistry};
/// use osiris_monolith::Monolith;
///
/// let mut registry = ProgramRegistry::new();
/// registry.register("hello", |sys| i32::from(sys.getpid().unwrap().0 != 1));
/// let mut host = Host::new(Monolith::new(), registry);
/// assert!(host.run("hello", &[]).completed());
/// ```
#[derive(Debug)]
pub struct Monolith {
    cost: CostModel,
    clock: VirtualClock,
    procs: HashMap<u32, Proc>,
    next_pid: u32,
    waiters: HashMap<u32, (Option<u32>, SyscallId)>,
    timers: BTreeMap<(u64, u64), (SyscallId, Pid)>,
    timer_seq: u64,
    free_frames: u64,
    nodes: HashMap<u64, Node>,
    next_ino: u64,
    oft: HashMap<u32, Open>,
    next_slot: u32,
    fds: HashMap<(u32, u32), u32>,
    pipes: HashMap<u32, MPipe>,
    next_pipe: u32,
    kv: BTreeMap<String, Vec<u8>>,
    /// FIFO of resident block ids for the buffer-cache model.
    cache: VecDeque<(u64, u64)>,
    cache_cap: usize,
    replies: Vec<(SyscallId, Pid, SysReply)>,
    kills: Vec<Pid>,
    syscalls: u64,
}

impl Default for Monolith {
    fn default() -> Self {
        Self::new()
    }
}

impl Monolith {
    /// Creates a monolith with the default cost model and the same cache
    /// capacity as the OSIRIS VFS (64 blocks).
    pub fn new() -> Self {
        Self::with_cost(CostModel::default(), 64, 65_536)
    }

    /// Creates a monolith with an explicit cost model, buffer-cache capacity
    /// and frame-pool size (use the same values as the OSIRIS configuration
    /// being compared against).
    pub fn with_cost(cost: CostModel, cache_cap: usize, frames: u64) -> Self {
        let mut nodes = HashMap::new();
        let mut root = BTreeMap::new();
        nodes.insert(2, Node::Dir(BTreeMap::new()));
        nodes.insert(3, Node::Dir(BTreeMap::new()));
        root.insert("tmp".to_string(), 2);
        root.insert("bin".to_string(), 3);
        nodes.insert(1, Node::Dir(root));
        let mut procs = HashMap::new();
        procs.insert(1, Proc::fresh(0));
        Monolith {
            cost,
            clock: VirtualClock::new(),
            procs,
            next_pid: 2,
            waiters: HashMap::new(),
            timers: BTreeMap::new(),
            timer_seq: 0,
            free_frames: frames - IMG_PAGES,
            nodes,
            next_ino: 4,
            oft: HashMap::new(),
            next_slot: 0,
            fds: HashMap::new(),
            pipes: HashMap::new(),
            next_pipe: 0,
            kv: BTreeMap::new(),
            cache: VecDeque::new(),
            cache_cap,
            replies: Vec::new(),
            kills: Vec::new(),
            syscalls: 0,
        }
    }

    /// Number of syscalls served.
    pub fn syscall_count(&self) -> u64 {
        self.syscalls
    }

    fn charge(&mut self, c: u64) {
        self.clock.advance(c);
    }

    /// Buffer-cache model: touching `(ino, block)` is free on a hit; a
    /// *read* miss charges the disk latency (synchronous I/O), while a
    /// write miss only installs the block (write-back, like the OSIRIS
    /// VFS).
    fn touch_block(&mut self, ino: u64, block: u64, is_read: bool) {
        if let Some(pos) = self.cache.iter().position(|e| *e == (ino, block)) {
            let e = self.cache.remove(pos).expect("position valid");
            self.cache.push_back(e);
            return;
        }
        if is_read {
            self.charge(self.cost.disk_latency / 8);
        }
        if self.cache.len() >= self.cache_cap {
            self.cache.pop_front();
        }
        self.cache.push_back((ino, block));
    }

    fn reply(&mut self, sid: SyscallId, pid: Pid, r: SysReply) {
        self.replies.push((sid, pid, r));
    }

    fn resolve(&self, path: &str) -> Result<(u64, String, Option<u64>), Errno> {
        if !path.starts_with('/') || path.len() > 512 {
            return Err(Errno::EINVAL);
        }
        let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        if parts.is_empty() {
            return Ok((1, String::new(), Some(1)));
        }
        let mut dir = 1u64;
        for part in &parts[..parts.len() - 1] {
            match self.nodes.get(&dir) {
                Some(Node::Dir(entries)) => {
                    dir = *entries.get(*part).ok_or(Errno::ENOENT)?;
                }
                Some(Node::File(_)) => return Err(Errno::ENOTDIR),
                None => return Err(Errno::ENOENT),
            }
        }
        let leaf = parts[parts.len() - 1].to_string();
        match self.nodes.get(&dir) {
            Some(Node::Dir(entries)) => {
                let ino = entries.get(&leaf).copied();
                Ok((dir, leaf, ino))
            }
            Some(Node::File(_)) => Err(Errno::ENOTDIR),
            None => Err(Errno::ENOENT),
        }
    }

    fn alloc_fd(&self, pid: u32) -> Option<u32> {
        (0..MAX_FDS).find(|fd| !self.fds.contains_key(&(pid, *fd)))
    }

    fn install_fd(&mut self, pid: u32, target: Target, flags: OpenFlags) -> Option<u32> {
        let fd = self.alloc_fd(pid)?;
        let slot = self.next_slot;
        self.next_slot += 1;
        self.oft.insert(
            slot,
            Open {
                target,
                offset: 0,
                flags,
                refs: 1,
            },
        );
        self.fds.insert((pid, fd), slot);
        Some(fd)
    }

    fn close_slot(&mut self, slot: u32) {
        let Some(of) = self.oft.get(&slot).cloned() else {
            return;
        };
        match of.target {
            Target::File { .. } => {}
            Target::PipeR { id } => {
                if let Some(p) = self.pipes.get_mut(&id) {
                    p.readers -= 1;
                }
            }
            Target::PipeW { id } => {
                let wake = match self.pipes.get_mut(&id) {
                    Some(p) => {
                        p.writers -= 1;
                        if p.writers == 0 {
                            std::mem::take(&mut p.waiting)
                        } else {
                            Vec::new()
                        }
                    }
                    None => Vec::new(),
                };
                for (sid, pid, _) in wake {
                    self.reply(sid, pid, SysReply::Data(Vec::new()));
                }
            }
        }
        if let Target::PipeR { id } | Target::PipeW { id } = of.target {
            if self
                .pipes
                .get(&id)
                .map(|p| p.readers == 0 && p.writers == 0)
                .unwrap_or(false)
            {
                self.pipes.remove(&id);
            }
        }
        if of.refs > 1 {
            if let Some(f) = self.oft.get_mut(&slot) {
                f.refs -= 1;
            }
        } else {
            self.oft.remove(&slot);
        }
    }

    fn terminate(&mut self, pid: u32, code: i32) {
        let Some(proc) = self.procs.get(&pid).cloned() else {
            return;
        };
        self.charge(self.cost.handler_base + proc.resident() * self.cost.mem_write);
        self.free_frames += proc.resident();
        // Children: reap zombies, reparent the rest to init.
        let children: Vec<u32> = self
            .procs
            .iter()
            .filter(|(_, p)| p.ppid == pid)
            .map(|(c, _)| *c)
            .collect();
        for c in children {
            let zombie = matches!(self.procs[&c].state, ProcState::Zombie(_));
            if zombie {
                self.procs.remove(&c);
            } else if let Some(p) = self.procs.get_mut(&c) {
                p.ppid = 1;
            }
        }
        // Close descriptors.
        let keys: Vec<(u32, u32)> = self
            .fds
            .keys()
            .filter(|(p, _)| *p == pid)
            .copied()
            .collect();
        for k in keys {
            if let Some(slot) = self.fds.remove(&k) {
                self.close_slot(slot);
            }
        }
        // Cancel blocked pipe reads.
        let pipe_ids: Vec<u32> = self.pipes.keys().copied().collect();
        let mut cancelled = Vec::new();
        for id in pipe_ids {
            if let Some(p) = self.pipes.get_mut(&id) {
                let (mine, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut p.waiting)
                    .into_iter()
                    .partition(|(_, w, _)| w.0 == pid);
                p.waiting = rest;
                cancelled.extend(mine);
            }
        }
        for (sid, wpid, _) in cancelled {
            self.reply(sid, wpid, SysReply::Err(Errno::EKILLED));
        }
        // Wake a waiting parent or become a zombie.
        let ppid = proc.ppid;
        let waiter = self
            .waiters
            .get(&ppid)
            .filter(|(t, _)| t.is_none() || *t == Some(pid))
            .copied();
        if let Some((_, sid)) = waiter {
            self.waiters.remove(&ppid);
            self.procs.remove(&pid);
            self.reply(sid, Pid(ppid), SysReply::Exited(Pid(pid), code));
        } else if self.procs.contains_key(&ppid) {
            if let Some(p) = self.procs.get_mut(&pid) {
                p.state = ProcState::Zombie(code);
            }
        } else {
            self.procs.remove(&pid);
        }
    }

    fn dispatch(&mut self, sid: SyscallId, pid: Pid, call: Syscall) {
        let base = self.cost.syscall_entry + self.cost.handler_base;
        self.charge(base);
        match call {
            Syscall::Spawn { .. } | Syscall::Fork => {
                let Some(parent) = self.procs.get(&pid.0).cloned() else {
                    self.reply(sid, pid, SysReply::Err(Errno::ESRCH));
                    return;
                };
                let need = parent.resident();
                if self.free_frames < need {
                    self.reply(sid, pid, SysReply::Err(Errno::ENOMEM));
                    return;
                }
                self.free_frames -= need;
                let child = self.next_pid;
                self.next_pid += 1;
                let mut cp = parent.clone();
                cp.ppid = pid.0;
                cp.state = ProcState::Alive;
                self.charge(need * self.cost.mem_write);
                self.procs.insert(child, cp);
                // Inherit descriptors.
                let entries: Vec<(u32, u32)> = self
                    .fds
                    .iter()
                    .filter(|((p, _), _)| *p == pid.0)
                    .map(|((_, fd), slot)| (*fd, *slot))
                    .collect();
                for (fd, slot) in entries {
                    self.fds.insert((child, fd), slot);
                    let target = self.oft.get_mut(&slot).map(|f| {
                        f.refs += 1;
                        f.target
                    });
                    match target {
                        Some(Target::PipeR { id }) => {
                            if let Some(p) = self.pipes.get_mut(&id) {
                                p.readers += 1;
                            }
                        }
                        Some(Target::PipeW { id }) => {
                            if let Some(p) = self.pipes.get_mut(&id) {
                                p.writers += 1;
                            }
                        }
                        _ => {}
                    }
                }
                // Spawn additionally loads the binary: one cache touch.
                if matches!(call, Syscall::Spawn { .. }) {
                    self.touch_block(0, u64::from(child) % 8, true);
                    self.charge(IMG_PAGES * self.cost.mem_write);
                }
                self.reply(sid, pid, SysReply::Proc(Pid(child)));
            }
            Syscall::Exec { .. } => {
                let Some(p) = self.procs.get_mut(&pid.0) else {
                    self.reply(sid, pid, SysReply::Err(Errno::ESRCH));
                    return;
                };
                let old = p.resident();
                p.data_pages = IMG_PAGES;
                p.mappings.clear();
                self.free_frames += old;
                self.free_frames -= IMG_PAGES;
                self.touch_block(0, u64::from(pid.0) % 8, true);
                self.charge(IMG_PAGES * self.cost.mem_write);
                self.reply(sid, pid, SysReply::Ok);
            }
            Syscall::Exit { code } => self.terminate(pid.0, code),
            Syscall::WaitPid { pid: target } => self.wait(sid, pid, Some(target.0)),
            Syscall::WaitAny => self.wait(sid, pid, None),
            Syscall::Kill { pid: target, sig } => self.kill(sid, pid, target, sig),
            Syscall::GetPid => self.reply(sid, pid, SysReply::Proc(pid)),
            Syscall::GetPPid => {
                let r = match self.procs.get(&pid.0) {
                    Some(p) => SysReply::Proc(Pid(p.ppid)),
                    None => SysReply::Err(Errno::ESRCH),
                };
                self.reply(sid, pid, r);
            }
            Syscall::SigMask { sig, masked } => {
                if sig == Signal::SigKill {
                    self.reply(sid, pid, SysReply::Err(Errno::EINVAL));
                    return;
                }
                let r = match self.procs.get_mut(&pid.0) {
                    Some(p) => {
                        if masked {
                            if !p.masked.contains(&sig) {
                                p.masked.push(sig);
                            }
                        } else {
                            p.masked.retain(|s| *s != sig);
                        }
                        SysReply::Ok
                    }
                    None => SysReply::Err(Errno::ESRCH),
                };
                self.reply(sid, pid, r);
            }
            Syscall::SigPending => {
                let r = match self.procs.get_mut(&pid.0) {
                    Some(p) => SysReply::Signals(std::mem::take(&mut p.pending)),
                    None => SysReply::Err(Errno::ESRCH),
                };
                self.reply(sid, pid, r);
            }
            Syscall::Sleep { ticks } => {
                self.timer_seq += 1;
                let at = self.clock.now() + ticks.max(1);
                self.timers.insert((at, self.timer_seq), (sid, pid));
            }
            Syscall::Brk { pages } => {
                let Some(p) = self.procs.get(&pid.0).cloned() else {
                    self.reply(sid, pid, SysReply::Err(Errno::ESRCH));
                    return;
                };
                let new = p.data_pages as i64 + pages;
                if new < 0 {
                    self.reply(sid, pid, SysReply::Err(Errno::EINVAL));
                    return;
                }
                if pages > 0 {
                    if self.free_frames < pages as u64 {
                        self.reply(sid, pid, SysReply::Err(Errno::ENOMEM));
                        return;
                    }
                    self.free_frames -= pages as u64;
                    self.charge(pages as u64 * self.cost.mem_write);
                } else {
                    self.free_frames += (-pages) as u64;
                }
                if let Some(p) = self.procs.get_mut(&pid.0) {
                    p.data_pages = new as u64;
                }
                self.reply(sid, pid, SysReply::Val(new));
            }
            Syscall::Mmap { pages } => {
                if pages == 0 {
                    self.reply(sid, pid, SysReply::Err(Errno::EINVAL));
                    return;
                }
                if self.free_frames < pages {
                    self.reply(sid, pid, SysReply::Err(Errno::ENOMEM));
                    return;
                }
                self.free_frames -= pages;
                self.charge(pages * self.cost.mem_write);
                let r = match self.procs.get_mut(&pid.0) {
                    Some(p) => {
                        let id = p.mappings.keys().max().copied().unwrap_or(0) + 1;
                        p.mappings.insert(id, pages);
                        SysReply::Val(id as i64)
                    }
                    None => SysReply::Err(Errno::ESRCH),
                };
                self.reply(sid, pid, r);
            }
            Syscall::Munmap { id } => {
                let r = match self.procs.get_mut(&pid.0) {
                    Some(p) => match p.mappings.remove(&id) {
                        Some(pages) => {
                            self.free_frames += pages;
                            SysReply::Ok
                        }
                        None => SysReply::Err(Errno::EINVAL),
                    },
                    None => SysReply::Err(Errno::ESRCH),
                };
                self.reply(sid, pid, r);
            }
            Syscall::VmStat => {
                let r = match self.procs.get(&pid.0) {
                    Some(p) => SysReply::Val(p.resident() as i64),
                    None => SysReply::Err(Errno::ESRCH),
                };
                self.reply(sid, pid, r);
            }
            Syscall::Open { path, flags } => self.open(sid, pid, &path, flags),
            Syscall::Close { fd } => match self.fds.remove(&(pid.0, fd.0)) {
                Some(slot) => {
                    self.close_slot(slot);
                    self.reply(sid, pid, SysReply::Ok);
                }
                None => self.reply(sid, pid, SysReply::Err(Errno::EBADF)),
            },
            Syscall::Read { fd, len } => self.read(sid, pid, fd, len),
            Syscall::Write { fd, bytes } => self.write(sid, pid, fd, &bytes),
            Syscall::Seek { fd, from } => self.seek(sid, pid, fd, from),
            Syscall::Unlink { path } => self.unlink(sid, pid, &path),
            Syscall::Mkdir { path } => self.mkdir(sid, pid, &path),
            Syscall::ReadDir { path } => self.readdir(sid, pid, &path),
            Syscall::Stat { path } => self.stat(sid, pid, &path),
            Syscall::Rename { from, to } => self.rename(sid, pid, &from, &to),
            Syscall::Pipe => {
                let id = self.next_pipe;
                self.next_pipe += 1;
                self.pipes.insert(
                    id,
                    MPipe {
                        buf: VecDeque::new(),
                        readers: 1,
                        writers: 1,
                        waiting: Vec::new(),
                    },
                );
                let Some(rfd) = self.install_fd(pid.0, Target::PipeR { id }, OpenFlags::RDONLY)
                else {
                    self.pipes.remove(&id);
                    self.reply(sid, pid, SysReply::Err(Errno::EMFILE));
                    return;
                };
                let wflags = OpenFlags {
                    read: false,
                    write: true,
                    create: false,
                    truncate: false,
                    append: false,
                };
                let Some(wfd) = self.install_fd(pid.0, Target::PipeW { id }, wflags) else {
                    if let Some(slot) = self.fds.remove(&(pid.0, rfd)) {
                        self.oft.remove(&slot);
                    }
                    self.pipes.remove(&id);
                    self.reply(sid, pid, SysReply::Err(Errno::EMFILE));
                    return;
                };
                self.reply(sid, pid, SysReply::TwoDesc(Fd(rfd), Fd(wfd)));
            }
            Syscall::Dup { fd } => {
                let Some(slot) = self.fds.get(&(pid.0, fd.0)).copied() else {
                    self.reply(sid, pid, SysReply::Err(Errno::EBADF));
                    return;
                };
                let Some(newfd) = self.alloc_fd(pid.0) else {
                    self.reply(sid, pid, SysReply::Err(Errno::EMFILE));
                    return;
                };
                let target = self.oft.get_mut(&slot).map(|f| {
                    f.refs += 1;
                    f.target
                });
                match target {
                    Some(Target::PipeR { id }) => {
                        if let Some(p) = self.pipes.get_mut(&id) {
                            p.readers += 1;
                        }
                    }
                    Some(Target::PipeW { id }) => {
                        if let Some(p) = self.pipes.get_mut(&id) {
                            p.writers += 1;
                        }
                    }
                    _ => {}
                }
                self.fds.insert((pid.0, newfd), slot);
                self.reply(sid, pid, SysReply::Desc(Fd(newfd)));
            }
            Syscall::Fsync { fd } => {
                let r = match self.fds.get(&(pid.0, fd.0)) {
                    Some(_) => {
                        // Synchronous flush: one disk latency.
                        self.charge(self.cost.disk_latency / 8);
                        SysReply::Ok
                    }
                    None => SysReply::Err(Errno::EBADF),
                };
                self.reply(sid, pid, r);
            }
            Syscall::DsPut { key, value } => {
                self.charge(value.len() as u64 / 8);
                self.kv.insert(key, value);
                self.reply(sid, pid, SysReply::Ok);
            }
            Syscall::DsGet { key } => {
                let r = match self.kv.get(&key) {
                    Some(v) => SysReply::Data(v.clone()),
                    None => SysReply::Err(Errno::ENOKEY),
                };
                self.reply(sid, pid, r);
            }
            Syscall::DsDel { key } => {
                let r = match self.kv.remove(&key) {
                    Some(_) => SysReply::Ok,
                    None => SysReply::Err(Errno::ENOKEY),
                };
                self.reply(sid, pid, r);
            }
            Syscall::DsList { prefix } => {
                let names: Vec<String> = self
                    .kv
                    .keys()
                    .filter(|k| k.starts_with(&prefix))
                    .cloned()
                    .collect();
                self.reply(sid, pid, SysReply::Names(names));
            }
        }
    }

    fn wait(&mut self, sid: SyscallId, pid: Pid, target: Option<u32>) {
        let mut zombie: Option<(u32, i32)> = None;
        let mut has_child = false;
        for (cpid, p) in &self.procs {
            if p.ppid == pid.0 && target.is_none_or(|t| t == *cpid) {
                has_child = true;
                if let ProcState::Zombie(code) = p.state {
                    if zombie.is_none_or(|(z, _)| *cpid < z) {
                        zombie = Some((*cpid, code));
                    }
                }
            }
        }
        if let Some((cpid, code)) = zombie {
            self.procs.remove(&cpid);
            self.reply(sid, pid, SysReply::Exited(Pid(cpid), code));
        } else if has_child {
            self.waiters.insert(pid.0, (target, sid));
        } else {
            self.reply(sid, pid, SysReply::Err(Errno::ECHILD));
        }
    }

    fn kill(&mut self, sid: SyscallId, pid: Pid, target: Pid, sig: Signal) {
        let Some(t) = self.procs.get(&target.0) else {
            self.reply(sid, pid, SysReply::Err(Errno::ESRCH));
            return;
        };
        if t.state != ProcState::Alive {
            self.reply(sid, pid, SysReply::Err(Errno::ESRCH));
            return;
        }
        let fatal = match sig {
            Signal::SigKill => true,
            Signal::SigTerm => !t.masked.contains(&Signal::SigTerm),
            _ => false,
        };
        if fatal {
            if let Some((_, wsid)) = self.waiters.remove(&target.0) {
                self.reply(wsid, target, SysReply::Err(Errno::EKILLED));
            }
            let sleeping: Vec<(u64, u64)> = self
                .timers
                .iter()
                .filter(|(_, (_, p))| *p == target)
                .map(|(k, _)| *k)
                .collect();
            for k in sleeping {
                if let Some((tsid, tpid)) = self.timers.remove(&k) {
                    self.reply(tsid, tpid, SysReply::Err(Errno::EKILLED));
                }
            }
            self.kills.push(target);
            self.terminate(target.0, -9);
        } else if let Some(t) = self.procs.get_mut(&target.0) {
            if !t.pending.contains(&sig) {
                t.pending.push(sig);
            }
        }
        self.reply(sid, pid, SysReply::Ok);
    }

    fn open(&mut self, sid: SyscallId, pid: Pid, path: &str, flags: OpenFlags) {
        let (parent, leaf, ino) = match self.resolve(path) {
            Ok(r) => r,
            Err(e) => {
                self.reply(sid, pid, SysReply::Err(e));
                return;
            }
        };
        let ino = match ino {
            Some(i) => {
                if matches!(self.nodes.get(&i), Some(Node::Dir(_))) {
                    self.reply(sid, pid, SysReply::Err(Errno::EISDIR));
                    return;
                }
                if flags.truncate {
                    self.nodes.insert(i, Node::File(Vec::new()));
                }
                i
            }
            None => {
                if !flags.create {
                    self.reply(sid, pid, SysReply::Err(Errno::ENOENT));
                    return;
                }
                let i = self.next_ino;
                self.next_ino += 1;
                self.nodes.insert(i, Node::File(Vec::new()));
                if let Some(Node::Dir(entries)) = self.nodes.get_mut(&parent) {
                    entries.insert(leaf, i);
                }
                i
            }
        };
        match self.install_fd(pid.0, Target::File { ino }, flags) {
            Some(fd) => self.reply(sid, pid, SysReply::Desc(Fd(fd))),
            None => self.reply(sid, pid, SysReply::Err(Errno::EMFILE)),
        }
    }

    fn read(&mut self, sid: SyscallId, pid: Pid, fd: Fd, len: u32) {
        let Some(slot) = self.fds.get(&(pid.0, fd.0)).copied() else {
            self.reply(sid, pid, SysReply::Err(Errno::EBADF));
            return;
        };
        let of = self.oft[&slot].clone();
        match of.target {
            Target::File { ino } => {
                let Some(Node::File(data)) = self.nodes.get(&ino) else {
                    self.reply(sid, pid, SysReply::Err(Errno::EIO));
                    return;
                };
                let off = of.offset as usize;
                if off >= data.len() || len == 0 {
                    self.reply(sid, pid, SysReply::Data(Vec::new()));
                    return;
                }
                let end = (off + len as usize).min(data.len());
                let out = data[off..end].to_vec();
                let b0 = off / BLOCK_SIZE;
                let b1 = (end - 1) / BLOCK_SIZE;
                for b in b0..=b1 {
                    self.touch_block(ino, b as u64, true);
                }
                self.charge(out.len() as u64 / 8);
                if let Some(f) = self.oft.get_mut(&slot) {
                    f.offset = end as u64;
                }
                self.reply(sid, pid, SysReply::Data(out));
            }
            Target::PipeR { id } => {
                let Some(p) = self.pipes.get_mut(&id) else {
                    self.reply(sid, pid, SysReply::Err(Errno::EPIPE));
                    return;
                };
                if !p.buf.is_empty() {
                    let k = (len as usize).min(p.buf.len());
                    let out: Vec<u8> = p.buf.drain(..k).collect();
                    self.reply(sid, pid, SysReply::Data(out));
                } else if p.writers == 0 {
                    self.reply(sid, pid, SysReply::Data(Vec::new()));
                } else {
                    p.waiting.push((sid, pid, len));
                }
            }
            Target::PipeW { .. } => self.reply(sid, pid, SysReply::Err(Errno::EBADF)),
        }
    }

    fn write(&mut self, sid: SyscallId, pid: Pid, fd: Fd, bytes: &[u8]) {
        let Some(slot) = self.fds.get(&(pid.0, fd.0)).copied() else {
            self.reply(sid, pid, SysReply::Err(Errno::EBADF));
            return;
        };
        let of = self.oft[&slot].clone();
        match of.target {
            Target::File { ino } => {
                if !of.flags.write {
                    self.reply(sid, pid, SysReply::Err(Errno::EBADF));
                    return;
                }
                let Some(Node::File(data)) = self.nodes.get_mut(&ino) else {
                    self.reply(sid, pid, SysReply::Err(Errno::EIO));
                    return;
                };
                let off = if of.flags.append {
                    data.len()
                } else {
                    of.offset as usize
                };
                let end = off + bytes.len();
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[off..end].copy_from_slice(bytes);
                let b0 = off / BLOCK_SIZE;
                let b1 = if end == 0 { 0 } else { (end - 1) / BLOCK_SIZE };
                for b in b0..=b1 {
                    self.touch_block(ino, b as u64, false);
                }
                self.charge(bytes.len() as u64 / 8);
                if let Some(f) = self.oft.get_mut(&slot) {
                    f.offset = end as u64;
                }
                self.reply(sid, pid, SysReply::Val(bytes.len() as i64));
            }
            Target::PipeW { id } => {
                let Some(p) = self.pipes.get_mut(&id) else {
                    self.reply(sid, pid, SysReply::Err(Errno::EPIPE));
                    return;
                };
                if p.readers == 0 {
                    self.reply(sid, pid, SysReply::Err(Errno::EPIPE));
                    return;
                }
                p.buf.extend(bytes);
                let mut served = Vec::new();
                while !p.waiting.is_empty() && !p.buf.is_empty() {
                    let (wsid, wpid, wlen) = p.waiting.remove(0);
                    let k = (wlen as usize).min(p.buf.len());
                    let out: Vec<u8> = p.buf.drain(..k).collect();
                    served.push((wsid, wpid, out));
                }
                self.charge(bytes.len() as u64 / 8);
                for (wsid, wpid, out) in served {
                    self.reply(wsid, wpid, SysReply::Data(out));
                }
                self.reply(sid, pid, SysReply::Val(bytes.len() as i64));
            }
            Target::PipeR { .. } => self.reply(sid, pid, SysReply::Err(Errno::EBADF)),
        }
    }

    fn seek(&mut self, sid: SyscallId, pid: Pid, fd: Fd, from: SeekFrom) {
        let Some(slot) = self.fds.get(&(pid.0, fd.0)).copied() else {
            self.reply(sid, pid, SysReply::Err(Errno::EBADF));
            return;
        };
        let of = self.oft[&slot].clone();
        let Target::File { ino } = of.target else {
            self.reply(sid, pid, SysReply::Err(Errno::EPIPE));
            return;
        };
        let size = match self.nodes.get(&ino) {
            Some(Node::File(d)) => d.len() as i64,
            _ => 0,
        };
        let new = match from {
            SeekFrom::Start(o) => o as i64,
            SeekFrom::Current(d) => of.offset as i64 + d,
            SeekFrom::End(d) => size + d,
        };
        if new < 0 {
            self.reply(sid, pid, SysReply::Err(Errno::EINVAL));
            return;
        }
        if let Some(f) = self.oft.get_mut(&slot) {
            f.offset = new as u64;
        }
        self.reply(sid, pid, SysReply::Val(new));
    }

    fn unlink(&mut self, sid: SyscallId, pid: Pid, path: &str) {
        match self.resolve(path) {
            Ok((parent, leaf, Some(ino))) => {
                if matches!(self.nodes.get(&ino), Some(Node::Dir(_))) {
                    self.reply(sid, pid, SysReply::Err(Errno::EISDIR));
                    return;
                }
                if self.oft.values().any(|f| f.target == Target::File { ino }) {
                    self.reply(sid, pid, SysReply::Err(Errno::EBUSY));
                    return;
                }
                self.nodes.remove(&ino);
                if let Some(Node::Dir(entries)) = self.nodes.get_mut(&parent) {
                    entries.remove(&leaf);
                }
                self.cache.retain(|(i, _)| *i != ino);
                self.reply(sid, pid, SysReply::Ok);
            }
            Ok(_) => self.reply(sid, pid, SysReply::Err(Errno::ENOENT)),
            Err(e) => self.reply(sid, pid, SysReply::Err(e)),
        }
    }

    fn mkdir(&mut self, sid: SyscallId, pid: Pid, path: &str) {
        match self.resolve(path) {
            Ok((_, _, Some(_))) => self.reply(sid, pid, SysReply::Err(Errno::EEXIST)),
            Ok((parent, leaf, None)) => {
                let i = self.next_ino;
                self.next_ino += 1;
                self.nodes.insert(i, Node::Dir(BTreeMap::new()));
                if let Some(Node::Dir(entries)) = self.nodes.get_mut(&parent) {
                    entries.insert(leaf, i);
                }
                self.reply(sid, pid, SysReply::Ok);
            }
            Err(e) => self.reply(sid, pid, SysReply::Err(e)),
        }
    }

    fn readdir(&mut self, sid: SyscallId, pid: Pid, path: &str) {
        match self.resolve(path) {
            Ok((_, _, Some(ino))) => match self.nodes.get(&ino) {
                Some(Node::Dir(entries)) => {
                    let names: Vec<String> = entries.keys().cloned().collect();
                    self.reply(sid, pid, SysReply::Names(names));
                }
                _ => self.reply(sid, pid, SysReply::Err(Errno::ENOTDIR)),
            },
            Ok(_) => self.reply(sid, pid, SysReply::Err(Errno::ENOENT)),
            Err(e) => self.reply(sid, pid, SysReply::Err(e)),
        }
    }

    fn stat(&mut self, sid: SyscallId, pid: Pid, path: &str) {
        match self.resolve(path) {
            Ok((_, _, Some(ino))) => {
                let st = match self.nodes.get(&ino) {
                    Some(Node::File(d)) => FileStat {
                        size: d.len() as u64,
                        is_dir: false,
                        nlink: 1,
                    },
                    Some(Node::Dir(e)) => FileStat {
                        size: 0,
                        is_dir: true,
                        nlink: e.len() as u32 + 2,
                    },
                    None => {
                        self.reply(sid, pid, SysReply::Err(Errno::EIO));
                        return;
                    }
                };
                self.reply(sid, pid, SysReply::StatInfo(st));
            }
            Ok(_) => self.reply(sid, pid, SysReply::Err(Errno::ENOENT)),
            Err(e) => self.reply(sid, pid, SysReply::Err(e)),
        }
    }

    fn rename(&mut self, sid: SyscallId, pid: Pid, from: &str, to: &str) {
        let src = match self.resolve(from) {
            Ok((p, l, Some(i))) => (p, l, i),
            Ok(_) => {
                self.reply(sid, pid, SysReply::Err(Errno::ENOENT));
                return;
            }
            Err(e) => {
                self.reply(sid, pid, SysReply::Err(e));
                return;
            }
        };
        let dst = match self.resolve(to) {
            Ok((p, l, None)) => (p, l),
            Ok(_) => {
                self.reply(sid, pid, SysReply::Err(Errno::EEXIST));
                return;
            }
            Err(e) => {
                self.reply(sid, pid, SysReply::Err(e));
                return;
            }
        };
        if let Some(Node::Dir(entries)) = self.nodes.get_mut(&src.0) {
            entries.remove(&src.1);
        }
        if let Some(Node::Dir(entries)) = self.nodes.get_mut(&dst.0) {
            entries.insert(dst.1, src.2);
        }
        self.reply(sid, pid, SysReply::Ok);
    }
}

impl OsEngine for Monolith {
    fn submit(&mut self, sid: SyscallId, pid: Pid, call: Syscall) {
        self.syscalls += 1;
        self.dispatch(sid, pid, call);
    }

    fn pump(&mut self) -> Vec<(SyscallId, Pid, SysReply)> {
        std::mem::take(&mut self.replies)
    }

    fn take_kill_events(&mut self) -> Vec<Pid> {
        std::mem::take(&mut self.kills)
    }

    fn fire_next_timer(&mut self) -> bool {
        let Some((&(at, seq), _)) = self.timers.iter().next() else {
            return false;
        };
        let (sid, pid) = self.timers.remove(&(at, seq)).expect("key just observed");
        self.clock.advance_to(at);
        self.reply(sid, pid, SysReply::Ok);
        true
    }

    fn shutdown_state(&self) -> Option<ShutdownKind> {
        None
    }

    fn now(&self) -> u64 {
        self.clock.now()
    }

    fn charge_user(&mut self, units: u64) {
        let c = self.cost.user_compute;
        self.charge(units * c);
    }
}
