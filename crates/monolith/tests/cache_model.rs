//! Engine-level tests of the monolith's buffer-cache model: read misses
//! charge disk latency, write misses and hits do not — mirroring the OSIRIS
//! VFS write-back cache so the Table IV comparison is apples-to-apples.

use osiris_kernel::abi::{OpenFlags, Pid, SysReply, Syscall};
use osiris_kernel::{CostModel, OsEngine, SyscallId};
use osiris_monolith::Monolith;

fn call(m: &mut Monolith, sid: u64, call: Syscall) -> SysReply {
    m.submit(SyscallId(sid), Pid(1), call);
    m.pump().pop().expect("one reply").2
}

#[test]
fn read_misses_charge_latency_hits_do_not() {
    let cost = CostModel::default();
    // Cache of 4 blocks over a 16-block file.
    let mut m = Monolith::with_cost(cost, 4, 1024);
    let fd = match call(
        &mut m,
        1,
        Syscall::Open {
            path: "/tmp/c".into(),
            flags: OpenFlags::RDWR_CREATE,
        },
    ) {
        SysReply::Desc(fd) => fd,
        other => panic!("{other:?}"),
    };
    // Writing 16 KiB: no read-miss latency on the write path.
    let before = m.now();
    call(
        &mut m,
        2,
        Syscall::Write {
            fd,
            bytes: vec![1u8; 16 * 1024],
        },
    );
    let write_cost = m.now() - before;
    assert!(
        write_cost < cost.disk_latency / 8,
        "writes must not pay the read-miss latency: {write_cost}"
    );
    // Seek back and read it all: most blocks were evicted (cache 4 < 16),
    // so the read pays many miss latencies.
    call(
        &mut m,
        3,
        Syscall::Seek {
            fd,
            from: osiris_kernel::abi::SeekFrom::Start(0),
        },
    );
    let before = m.now();
    call(&mut m, 4, Syscall::Read { fd, len: 16 * 1024 });
    let cold_read = m.now() - before;
    assert!(
        cold_read > 10 * (cost.disk_latency / 8),
        "a cold 16-block read must pay multiple miss latencies: {cold_read}"
    );
    // Immediately re-reading the hot tail is nearly free.
    call(
        &mut m,
        5,
        Syscall::Seek {
            fd,
            from: osiris_kernel::abi::SeekFrom::End(-2048),
        },
    );
    let before = m.now();
    call(&mut m, 6, Syscall::Read { fd, len: 2048 });
    let hot_read = m.now() - before;
    assert!(
        hot_read < cost.disk_latency / 8,
        "hot blocks must be served from the cache: {hot_read}"
    );
}

#[test]
fn unlink_purges_cached_blocks() {
    let mut m = Monolith::with_cost(CostModel::default(), 8, 1024);
    let fd = match call(
        &mut m,
        1,
        Syscall::Open {
            path: "/tmp/u".into(),
            flags: OpenFlags::CREATE,
        },
    ) {
        SysReply::Desc(fd) => fd,
        other => panic!("{other:?}"),
    };
    call(
        &mut m,
        2,
        Syscall::Write {
            fd,
            bytes: vec![1u8; 2048],
        },
    );
    call(&mut m, 3, Syscall::Close { fd });
    call(
        &mut m,
        4,
        Syscall::Unlink {
            path: "/tmp/u".into(),
        },
    );
    // Recreating the file and reading it must not see stale cache hits
    // (semantically invisible, but the accounting should re-charge misses).
    let fd = match call(
        &mut m,
        5,
        Syscall::Open {
            path: "/tmp/u".into(),
            flags: OpenFlags::RDWR_CREATE,
        },
    ) {
        SysReply::Desc(fd) => fd,
        other => panic!("{other:?}"),
    };
    call(
        &mut m,
        6,
        Syscall::Write {
            fd,
            bytes: vec![2u8; 2048],
        },
    );
    call(
        &mut m,
        7,
        Syscall::Seek {
            fd,
            from: osiris_kernel::abi::SeekFrom::Start(0),
        },
    );
    match call(&mut m, 8, Syscall::Read { fd, len: 2048 }) {
        SysReply::Data(d) => assert!(d.iter().all(|b| *b == 2)),
        other => panic!("{other:?}"),
    }
}
