//! ABI parity: the same workload programs must behave identically on the
//! monolith and would on the microkernel OS (semantics, not timing).

use osiris_kernel::abi::{Errno, OpenFlags, SeekFrom, Signal};
use osiris_kernel::{Host, OsEngine, ProgramRegistry, RunOutcome};
use osiris_monolith::Monolith;

fn run<F>(prog: F) -> (RunOutcome, Monolith)
where
    F: Fn(&mut osiris_kernel::Sys) -> i32 + Send + Sync + 'static,
{
    osiris_kernel::install_quiet_panic_hook();
    let mut registry = ProgramRegistry::new();
    registry.register("main", prog);
    registry.register("child_ok", |_sys| 7);
    let mut host = Host::new(Monolith::new(), registry);
    let outcome = host.run("main", &[]);
    (outcome, host.into_engine())
}

fn expect_zero(outcome: &RunOutcome) {
    match outcome {
        RunOutcome::Completed { init_code: 0, .. } => {}
        other => panic!("expected clean completion, got {:?}", other),
    }
}

#[test]
fn process_lifecycle() {
    let (o, _) = run(|sys| {
        let child = sys.spawn("child_ok", &[]).unwrap();
        assert_eq!(sys.waitpid(child).unwrap(), 7);
        let c2 = sys.fork_run(|_c| 9).unwrap();
        let (p, code) = sys.wait_any().unwrap();
        assert_eq!((p, code), (c2, 9));
        assert_eq!(sys.wait_any().unwrap_err(), Errno::ECHILD);
        0
    });
    expect_zero(&o);
}

#[test]
fn files_and_dirs() {
    let (o, _) = run(|sys| {
        sys.mkdir("/tmp/x").unwrap();
        let fd = sys.open("/tmp/x/f", OpenFlags::CREATE).unwrap();
        sys.write(fd, b"abcdef").unwrap();
        sys.seek(fd, SeekFrom::Start(2)).unwrap();
        let fd2 = sys.open("/tmp/x/f", OpenFlags::RDONLY).unwrap();
        assert_eq!(sys.read(fd2, 3).unwrap(), b"abc");
        sys.close(fd2).unwrap();
        assert_eq!(sys.stat("/tmp/x/f").unwrap().size, 6);
        assert_eq!(sys.unlink("/tmp/x/f").unwrap_err(), Errno::EBUSY);
        sys.close(fd).unwrap();
        sys.rename("/tmp/x/f", "/tmp/x/g").unwrap();
        assert_eq!(sys.readdir("/tmp/x").unwrap(), vec!["g"]);
        sys.unlink("/tmp/x/g").unwrap();
        0
    });
    expect_zero(&o);
}

#[test]
fn pipes_block_and_wake() {
    let (o, _) = run(|sys| {
        let (r, w) = sys.pipe().unwrap();
        let child = sys
            .fork_run(move |c| {
                let d = c.read(r, 8).unwrap();
                i32::from(d != b"hi")
            })
            .unwrap();
        sys.write(w, b"hi").unwrap();
        assert_eq!(sys.waitpid(child).unwrap(), 0);
        sys.close(w).unwrap();
        sys.close(r).unwrap();
        0
    });
    expect_zero(&o);
}

#[test]
fn pipe_eof_and_epipe() {
    let (o, _) = run(|sys| {
        let (r, w) = sys.pipe().unwrap();
        sys.close(w).unwrap();
        assert_eq!(sys.read(r, 8).unwrap(), b"");
        sys.close(r).unwrap();
        let (r2, w2) = sys.pipe().unwrap();
        sys.close(r2).unwrap();
        assert_eq!(sys.write(w2, b"x").unwrap_err(), Errno::EPIPE);
        sys.close(w2).unwrap();
        0
    });
    expect_zero(&o);
}

#[test]
fn memory_and_signals() {
    let (o, _) = run(|sys| {
        let base = sys.vmstat().unwrap();
        sys.brk(2).unwrap();
        let id = sys.mmap(8).unwrap();
        assert_eq!(sys.vmstat().unwrap(), base + 10);
        sys.munmap(id).unwrap();
        sys.brk(-2).unwrap();
        let me = sys.getpid().unwrap();
        sys.sigmask(Signal::SigTerm, true).unwrap();
        sys.kill(me, Signal::SigTerm).unwrap();
        assert_eq!(sys.sigpending().unwrap(), vec![Signal::SigTerm]);
        0
    });
    expect_zero(&o);
}

#[test]
fn kill_and_sleep() {
    let (o, _) = run(|sys| {
        let child = sys
            .fork_run(|c| {
                c.sleep(1_000_000).unwrap();
                0
            })
            .unwrap();
        sys.kill(child, Signal::SigKill).unwrap();
        assert_eq!(sys.waitpid(child).unwrap(), -9);
        sys.sleep(100).unwrap();
        0
    });
    expect_zero(&o);
}

#[test]
fn kv_store() {
    let (o, _) = run(|sys| {
        sys.ds_put("a/1", b"x").unwrap();
        sys.ds_put("a/2", b"y").unwrap();
        assert_eq!(sys.ds_get("a/1").unwrap(), b"x");
        assert_eq!(sys.ds_list("a/").unwrap().len(), 2);
        sys.ds_del("a/1").unwrap();
        assert_eq!(sys.ds_get("a/1").unwrap_err(), Errno::ENOKEY);
        0
    });
    expect_zero(&o);
}

#[test]
fn monolith_is_faster_than_nothing_but_charges_time() {
    let (o, m) = run(|sys| {
        for _ in 0..100 {
            sys.getpid().unwrap();
        }
        sys.compute(10_000);
        0
    });
    expect_zero(&o);
    assert!(
        m.now() > 10_000,
        "compute and syscalls must advance the clock"
    );
    assert_eq!(m.syscall_count(), 100 + 1 /* exit */);
}
